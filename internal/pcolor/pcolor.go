// Package pcolor is a speculative parallel graph colorer in the
// style of Rokos, Gorman & Kelly, "A Fast and Scalable Graph
// Coloring Algorithm for Multi-core and Many-core Architectures"
// (2015): nodes are partitioned across workers, every worker colors
// its share optimistically against a read-mostly shared assignment,
// conflicts on partition-boundary edges are detected after a
// barrier, and the (shrinking) conflict set is recolored in further
// rounds until a proper coloring remains.
//
// Unlike color.Simplify/Select — which color within a fixed budget k
// and spill the overflow — pcolor colors with an unbounded first-fit
// palette, so every node receives a color and the figure of merit is
// how many colors were needed. That makes it the right backend for
// the standalone-graph paths (cmd/regalloc's graph mode, cmd/bench's
// stress graphs, the experiments package), not for the allocator's
// Figure 4 cycle, where the sequential heuristics remain the
// default.
//
// Determinism: for a fixed (Seed, Workers) pair the result is
// byte-identical across runs. Each round partitions the pending
// nodes into Workers contiguous chunks of a seeded permutation;
// during speculation a worker sees only committed colors and the
// tentative colors of its *own* chunk, so no cross-worker read races
// with a write and the outcome cannot depend on scheduling. Conflict
// resolution is by permutation rank (lower rank wins), which is also
// schedule-independent.
//
// Termination: every round commits at least the minimum-rank node of
// each conflicting component (it loses to nobody), and every
// conflict-free pending node, so the pending set strictly shrinks;
// in practice a few rounds suffice (the Stats record and the
// "pcolor.round.*" trace counters make the iteration visible).
//
// A second round structure, JonesPlassmann, is available via
// Options.Algo: instead of speculating and repairing, each round
// colors the independent set of nodes all of whose higher-priority
// (lower-rank) neighbors are already committed. Two ready nodes are
// never adjacent — if they were, one would still be waiting on the
// other — so the round colors against committed state only and there
// are never conflicts to repair. The result is provably the
// sequential first-fit greedy coloring in permutation order, for any
// worker count, which makes the engine's output independent of
// Workers and exactly predictable by a one-line sequential oracle.
package pcolor

import (
	"fmt"
	"runtime"
	"sync"

	"regalloc/internal/color"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
	"regalloc/internal/obs"
)

// Algo selects the round structure of the parallel colorer.
type Algo int

const (
	// Speculative is the Rokos–Gorman–Kelly scheme described in the
	// package comment: color optimistically, detect boundary
	// conflicts, recolor the losers. The default.
	Speculative Algo = iota
	// JonesPlassmann colors in independent-set rounds: a node is
	// ready once every lower-rank neighbor is committed, and each
	// round colors all ready nodes in parallel against committed
	// state only. No conflicts ever arise (Stats.Conflicts and
	// Stats.Recolored are always 0) and the coloring equals the
	// sequential first-fit greedy in permutation order for any
	// Workers value.
	JonesPlassmann
)

// NumAlgos is the number of defined Algo values, for validation.
const NumAlgos = 2

// String names the algorithm for flags and reports.
func (a Algo) String() string {
	switch a {
	case Speculative:
		return "speculative"
	case JonesPlassmann:
		return "jp"
	}
	return fmt.Sprintf("Algo(%d)", int(a))
}

// Options configures a parallel coloring run.
type Options struct {
	// Workers is the number of coloring goroutines; <= 0 means
	// GOMAXPROCS. The (Seed, Workers) pair fully determines the
	// coloring, so fix both for reproducible results. Under
	// JonesPlassmann the coloring depends on Seed alone.
	Workers int
	// Seed drives the node permutation that sets the processing
	// order, the partition boundaries, and the conflict priorities.
	Seed uint64
	// Algo picks the round structure; zero value is Speculative.
	Algo Algo
	// Tracer, when non-nil, receives per-round counters
	// (pcolor.round.pending, pcolor.round.conflicts) and run totals
	// (pcolor.rounds, pcolor.conflicts, pcolor.recolored,
	// pcolor.workers), all scoped to the color phase.
	Tracer *obs.Tracer
}

// Stats reports how the speculative iteration behaved.
type Stats struct {
	// Workers is the effective worker count after resolving <= 0.
	Workers int
	// Rounds is the number of speculate/detect rounds run (>= 1 for
	// a non-empty graph).
	Rounds int
	// Conflicts counts the boundary-edge conflicts detected across
	// all rounds (each conflicting edge counted once).
	Conflicts int
	// Recolored is the recolor work: nodes that lost a conflict and
	// had to be colored again in a later round.
	Recolored int
	// ColorsInt and ColorsFloat are the per-class palette sizes of
	// the final coloring (max color + 1; 0 when the class is empty).
	ColorsInt   int
	ColorsFloat int
}

// Colors returns the palette size for class c.
func (s *Stats) Colors(c ir.Class) int {
	if c == ir.ClassInt {
		return s.ColorsInt
	}
	return s.ColorsFloat
}

// Slack is the documented color-count slack of the speculative
// colorer: on the graphgen corpus, pcolor uses at most
// seq + Slack(seq) colors per class, where seq is the palette size
// of the sequential smallest-last heuristic (Sequential). The
// speculative first-fit order is a seeded permutation rather than
// the degree-aware smallest-last order, which costs a couple of
// colors on dense graphs; the differential tests pin this bound.
func Slack(seq int) int {
	s := seq / 4
	if s < 2 {
		return 2
	}
	return s
}

// Color colors g with an unbounded first-fit palette using the
// speculative parallel scheme and returns the assignment (indexed by
// node, always a proper coloring per color.Verify against
// KFor(stats)) together with the iteration stats.
func Color(g *ig.Graph, o Options) ([]int16, *Stats) {
	n := g.NumNodes()
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	st := &Stats{Workers: workers}
	colors := make([]int16, n)
	for i := range colors {
		colors[i] = color.NoColor
	}
	if n == 0 {
		emitTotals(o.Tracer, st)
		return colors, st
	}

	// Seeded permutation: processing order, partition boundaries, and
	// conflict priority (rank[v] = position of v in perm; lower rank
	// wins a conflict) all derive from it. The engine scratch — the
	// permutation buffers, the round state, and the per-worker
	// first-fit bitmaps — is pooled, so a warm process coloring graph
	// after graph pays only for the returned assignment.
	sc := scratchPool.Get().(*scratch)
	perm := sc.permutation(g, o.Seed)
	rank := growInt32s(sc.rank, n)
	sc.rank = rank
	for i, v := range perm {
		rank[v] = int32(i)
	}

	// Per-worker first-fit scratch: a node needs at most degree+1
	// colors, so maxDegree+2 cells always hold the scan.
	need := g.MaxDegree() + 2
	if cap(sc.used) < workers {
		sc.used = make([][]bool, workers)
	}
	sc.used = sc.used[:workers]
	for w := range sc.used {
		if cap(sc.used[w]) < need {
			sc.used[w] = make([]bool, need)
		}
		sc.used[w] = sc.used[w][:need]
	}

	if o.Algo == JonesPlassmann {
		colorJP(g, o, st, colors, perm, rank, sc, workers)
	} else {
		colorSpeculative(g, o, st, colors, perm, rank, sc, workers)
	}
	scratchPool.Put(sc)

	for v := int32(0); v < int32(n); v++ {
		pal := &st.ColorsInt
		if g.Class(v) == ir.ClassFloat {
			pal = &st.ColorsFloat
		}
		if c := int(colors[v]) + 1; c > *pal {
			*pal = c
		}
	}
	emitTotals(o.Tracer, st)
	return colors, st
}

// colorSpeculative runs the Rokos–Gorman–Kelly speculate/detect
// rounds of the package comment. colors is the committed assignment
// (all NoColor on entry); perm/rank set the processing order and the
// conflict priority.
func colorSpeculative(g *ig.Graph, o Options, st *Stats, colors []int16, perm, rank []int32, sc *scratch, workers int) {
	n := g.NumNodes()

	// Round-stamped speculation state. stamp[v] == round marks v as
	// pending this round; tent[v] is then its tentative color and
	// owner[v] the chunk that colored it. Only stamp needs a real
	// reset: round numbers restart at 1 on every run, so a stale
	// stamp from a previous (pooled) run could alias round 1, while
	// tent/owner/lost are (re)written for each pending node before
	// any stamp-guarded read can reach them.
	tent := growInt16s(sc.tent, n)
	sc.tent = tent
	stamp := growInt32s(sc.stamp, n)
	sc.stamp = stamp
	owner := growInt32s(sc.owner, n)
	sc.owner = owner
	lost := growBools(sc.lost, n)
	sc.lost = lost
	for i := range stamp {
		stamp[i] = 0
	}
	scratch := sc.used

	pending := perm
	for round := int32(1); len(pending) > 0; round++ {
		st.Rounds++
		if st.Rounds > 1 {
			st.Recolored += len(pending)
		}
		chunks := chunkBounds(len(pending), workers)

		// Reset the round state sequentially before any goroutine
		// starts: stamp/owner/lost/tent become read-only (or
		// owner-written-only) during the parallel phases, so no read
		// of a neighbor's state can race with a write.
		for w := 0; w < len(chunks)-1; w++ {
			for _, v := range pending[chunks[w]:chunks[w+1]] {
				stamp[v] = round
				owner[v] = int32(w)
				lost[v] = false
				tent[v] = color.NoColor
			}
		}

		// Phase 1 — speculate: each worker first-fit colors its chunk
		// against the committed assignment plus the tentatives of its
		// *own* chunk's already-processed nodes (tent[u] >= 0 with the
		// same owner). colors[] is read-only here; tent is written
		// only for nodes the worker owns, so the one cross-chunk read
		// (the owner check) touches data frozen before the round.
		var wg sync.WaitGroup
		for w := 0; w < len(chunks)-1; w++ {
			lo, hi := chunks[w], chunks[w+1]
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(w int, chunk []int32) {
				defer wg.Done()
				used := scratch[w]
				for _, v := range chunk {
					deg := g.Degree(v)
					lim := int16(deg + 1) // first-fit needs at most deg+1 colors
					for c := int16(0); c <= lim; c++ {
						used[c] = false
					}
					for _, u := range g.Neighbors(v) {
						if c := colors[u]; c >= 0 && c <= lim {
							used[c] = true
						}
						if owner[u] == int32(w) && stamp[u] == round {
							if c := tent[u]; c >= 0 && c <= lim {
								used[c] = true
							}
						}
					}
					for c := int16(0); c <= lim; c++ {
						if !used[c] {
							tent[v] = c
							break
						}
					}
				}
			}(w, pending[lo:hi])
		}
		wg.Wait()

		// Phase 2 — detect & commit: a pending node conflicts when a
		// neighbor pending in another chunk picked the same tentative
		// color; the higher rank loses and is recolored next round.
		// Winners commit (colors[] writes race with nothing: this
		// phase reads only tent/stamp/rank).
		conflicts := make([]int, len(chunks)-1)
		for w := 0; w < len(chunks)-1; w++ {
			lo, hi := chunks[w], chunks[w+1]
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(w int, chunk []int32) {
				defer wg.Done()
				for _, v := range chunk {
					for _, u := range g.Neighbors(v) {
						if stamp[u] != round || tent[u] != tent[v] {
							continue
						}
						// One conflicting edge, counted once: the loser
						// (higher rank) records it.
						if rank[u] < rank[v] {
							conflicts[w]++
							lost[v] = true
						}
					}
					if !lost[v] {
						colors[v] = tent[v]
					}
				}
			}(w, pending[lo:hi])
		}
		wg.Wait()

		roundConflicts := 0
		for _, c := range conflicts {
			roundConflicts += c
		}
		st.Conflicts += roundConflicts
		if tr := o.Tracer; tr.Enabled() {
			tr.Counter(obs.PhaseColor, "pcolor.round.pending", int64(len(pending)))
			tr.Counter(obs.PhaseColor, "pcolor.round.conflicts", int64(roundConflicts))
		}

		// Losers, in permutation order, are the next round's pending
		// set (the order is scan order, so determinism is preserved).
		var next []int32
		for _, v := range pending {
			if lost[v] {
				next = append(next, v)
			}
		}
		pending = next
	}
}

// colorJP runs the Jones–Plassmann independent-set rounds: a node is
// ready when wait[v] — its count of uncommitted lower-rank neighbors
// — reaches zero. The ready set of any round is independent (two
// adjacent ready nodes would each be waiting on the other's rank),
// so the parallel first-fit reads committed colors only and never
// needs repair. By induction on rank, every node is colored first-fit
// against exactly the final colors of its lower-rank neighbors, which
// is the sequential greedy coloring in permutation order — for any
// worker count. TestJonesPlassmannMatchesGreedyOracle pins that.
func colorJP(g *ig.Graph, o Options, st *Stats, colors []int16, perm, rank []int32, sc *scratch, workers int) {
	n := g.NumNodes()
	wait := growInt32s(sc.wait, n)
	sc.wait = wait
	cur := sc.ready[:0]
	for _, v := range perm {
		w := int32(0)
		for _, u := range g.Neighbors(v) {
			if rank[u] < rank[v] {
				w++
			}
		}
		wait[v] = w
		if w == 0 {
			cur = append(cur, v)
		}
	}
	nxt := sc.next[:0]
	var wg sync.WaitGroup
	for len(cur) > 0 {
		st.Rounds++
		chunks := chunkBounds(len(cur), workers)
		for w := 0; w < len(chunks)-1; w++ {
			lo, hi := chunks[w], chunks[w+1]
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(w int, chunk []int32) {
				defer wg.Done()
				used := sc.used[w]
				for _, v := range chunk {
					lim := int16(g.Degree(v) + 1)
					for c := int16(0); c <= lim; c++ {
						used[c] = false
					}
					for _, u := range g.Neighbors(v) {
						if c := colors[u]; c >= 0 && c <= lim {
							used[c] = true
						}
					}
					for c := int16(0); c <= lim; c++ {
						if !used[c] {
							colors[v] = c
							break
						}
					}
				}
			}(w, cur[lo:hi])
		}
		wg.Wait()
		if tr := o.Tracer; tr.Enabled() {
			tr.Counter(obs.PhaseColor, "pcolor.round.pending", int64(len(cur)))
			tr.Counter(obs.PhaseColor, "pcolor.round.conflicts", 0)
		}

		// Decrement the wait counts of higher-rank neighbors; those
		// reaching zero form the next round's independent set. Each
		// directed edge is walked exactly once across the whole run,
		// so this sequential phase is O(E) in total.
		nxt = nxt[:0]
		for _, v := range cur {
			for _, u := range g.Neighbors(v) {
				if rank[u] > rank[v] {
					wait[u]--
					if wait[u] == 0 {
						nxt = append(nxt, u)
					}
				}
			}
		}
		cur, nxt = nxt, cur
	}
	sc.ready, sc.next = cur, nxt
}

func emitTotals(tr *obs.Tracer, st *Stats) {
	if !tr.Enabled() {
		return
	}
	tr.Counter(obs.PhaseColor, "pcolor.workers", int64(st.Workers))
	tr.Counter(obs.PhaseColor, "pcolor.rounds", int64(st.Rounds))
	tr.Counter(obs.PhaseColor, "pcolor.conflicts", int64(st.Conflicts))
	tr.Counter(obs.PhaseColor, "pcolor.recolored", int64(st.Recolored))
}

// scratch holds the engine's reusable per-run state: permutation
// buffers, speculation round state, Jones–Plassmann wait counts and
// ready sets, and the per-worker first-fit bitmaps. Pooled via
// scratchPool so repeated colorings (the portfolio racer, a warm
// allocd process, the bench sweeps) stop allocating the O(n) arrays.
type scratch struct {
	shuffled []int32
	count    []int
	perm     []int32
	rank     []int32

	// Speculative round state.
	tent  []int16
	stamp []int32
	owner []int32
	lost  []bool

	// Jones–Plassmann round state.
	wait  []int32
	ready []int32
	next  []int32

	used [][]bool // per-worker first-fit bitmaps
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func growInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growInt16s(s []int16, n int) []int16 {
	if cap(s) < n {
		return make([]int16, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// permutation returns the processing order: degree-descending (the
// Welsh–Powell order, whose first-fit palette tracks smallest-last
// closely — a uniformly random order costs ~30% more colors on dense
// G(n,p)), with ties broken by a seeded Fisher–Yates shuffle. The
// shuffle uses the same xorshift64* generator as package graphgen so
// corpora stay reproducible across packages. The returned slice
// aliases the scratch.
func (sc *scratch) permutation(g *ig.Graph, seed uint64) []int32 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	s := seed
	next := func() uint64 {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return s * 0x2545F4914F6CDD1D
	}
	n := g.NumNodes()
	shuffled := growInt32s(sc.shuffled, n)
	sc.shuffled = shuffled
	for i := range shuffled {
		shuffled[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	// Stable counting sort by degree, descending: O(n + maxdeg),
	// cheaper than a comparison sort on the timed path.
	maxDeg := g.MaxDegree()
	count := growInts(sc.count, maxDeg+1)
	sc.count = count
	for i := range count {
		count[i] = 0
	}
	for _, v := range shuffled {
		count[maxDeg-g.Degree(v)]++
	}
	start := 0
	for d := range count {
		c := count[d]
		count[d] = start
		start += c
	}
	perm := growInt32s(sc.perm, n)
	sc.perm = perm
	for _, v := range shuffled {
		slot := maxDeg - g.Degree(v)
		perm[count[slot]] = v
		count[slot]++
	}
	return perm
}

// chunkBounds splits length items into at most workers contiguous
// chunks, returning the boundary offsets (len = chunks+1). The split
// depends only on (length, workers), keeping partitioning — and
// therefore the coloring — schedule-independent.
func chunkBounds(length, workers int) []int {
	if workers > length {
		workers = length
	}
	bounds := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		bounds[w] = w * length / workers
	}
	return bounds
}

// KFor returns the color.K bound matching a finished pcolor run, for
// verifying the assignment with color.Verify.
func KFor(st *Stats) color.K {
	return func(c ir.Class) int {
		n := st.Colors(c)
		if n < 1 {
			n = 1 // color.Verify requires a positive bound even for empty classes
		}
		return n
	}
}

// Sequential is the sequential comparator: smallest-last
// simplification (Matula–Beck) with an unbounded optimistic select —
// exactly what color.Simplify/Select degenerate to when k exceeds
// every degree. It returns the assignment and its stats (Workers and
// Rounds forced to 1, no conflicts), so callers can compare palette
// sizes and wall time against the speculative engine.
func Sequential(g *ig.Graph) ([]int16, *Stats) {
	n := g.NumNodes()
	kf := func(ir.Class) int { return n + 1 }
	costs := make([]float64, n)
	sr := color.Simplify(g, costs, kf, color.MatulaBeck, color.CostOverDegree)
	colors, uncolored := color.Select(g, sr.Stack, kf, true)
	if len(uncolored) != 0 {
		// k = n+1 exceeds any degree, so optimistic select cannot fail.
		panic("pcolor: sequential baseline left nodes uncolored")
	}
	st := &Stats{Workers: 1, Rounds: 1}
	for v := int32(0); v < int32(n); v++ {
		pal := &st.ColorsInt
		if g.Class(v) == ir.ClassFloat {
			pal = &st.ColorsFloat
		}
		if c := int(colors[v]) + 1; c > *pal {
			*pal = c
		}
	}
	return colors, st
}
