// Package ig implements the interference graph and the degree-bucket
// removal machinery of Matula and Beck that both coloring heuristics
// use for their linear-time simplification scans.
//
// Following Chaitin's implementation notes, the graph keeps a dual
// representation: a membership structure for O(1) interference tests
// and adjacency for iteration. Nodes are virtual registers; an edge
// joins two live ranges that are simultaneously live. Registers of
// different classes (integer vs floating point) never interfere —
// they compete for different register files.
//
// # Storage layout
//
// Adjacency is CSR (compressed sparse row): one flat []int32 of
// neighbor entries plus an n+1 offset table, built from an
// insertion-ordered edge log the first time a neighbor query arrives
// after an AddEdge. Per-row order is exactly the order edges were
// added — byte-identical to the per-node append vectors the package
// used before CSR — so simplify order, worklist tie-breaks, and
// final colors are unchanged; only the memory layout is (two flat
// slices instead of n headers and n growth-slack tails, which is
// what lets a 10^6-node graph fit and iterate at cache speed).
//
// Membership is a triangular bit matrix up to bitMatrixLimit nodes
// (Chaitin's actual data structure — n(n-1)/2 bits is 256 KiB at
// 2048 nodes) and a flat open-addressing hash set of packed edge
// keys beyond it: 8 bytes per slot at ≤ 75% load, no per-entry
// boxing, in place of the Go map whose overhead dominated
// million-node builds.
package ig

import (
	"fmt"
	"math/bits"

	"regalloc/internal/dataflow"
	"regalloc/internal/ir"
	"regalloc/internal/obs"
)

// bitMatrixLimit bounds the dense membership representation: up to
// this many nodes the interference test uses a triangular bit matrix;
// beyond it, the flat hash set of edge keys.
const bitMatrixLimit = 2048

// Graph is an interference graph over n live ranges. Interference
// testing uses the dual representation (bit matrix or flat edge set);
// iteration uses CSR adjacency built lazily from the edge log.
type Graph struct {
	n     int
	class []ir.Class

	nedges int
	bits   []uint64 // triangular bit matrix, nil when hashing
	eset   edgeSet  // flat open-addressing set, used when bits == nil

	// Edge log in insertion order; the source of truth the CSR is
	// compiled from.
	ea, eb []int32

	// CSR adjacency, valid while !dirty: node a's neighbors are
	// csr[off[a]:off[a+1]], in edge-insertion order.
	off   []int32
	csr   []int32
	dirty bool
}

// New returns an empty graph whose node classes are given by class.
func New(class []ir.Class) *Graph {
	return NewSized(class, 0)
}

// NewSized is New with a capacity hint for the expected edge count,
// pre-sizing the edge log and the membership set so bulk builders
// (graphgen's scale tier, the sharded merge) do not pay growth
// rehashes on the way to millions of edges. edgeHint <= 0 means no
// hint.
func NewSized(class []ir.Class, edgeHint int) *Graph {
	g := &Graph{
		n:     len(class),
		class: class,
		dirty: true,
	}
	if g.n <= bitMatrixLimit {
		g.bits = make([]uint64, (g.n*(g.n-1)/2+63)/64)
	} else {
		g.eset.init(edgeHint)
	}
	if edgeHint > 0 {
		g.ea = make([]int32, 0, edgeHint)
		g.eb = make([]int32, 0, edgeHint)
	}
	return g
}

// triIndex maps an unordered pair (a < b) to its bit position in the
// lower-triangular matrix.
func triIndex(a, b int32) int {
	// row b (b >= 1) starts at b(b-1)/2.
	return int(b)*(int(b)-1)/2 + int(a)
}

// NumNodes returns the number of nodes (live ranges).
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of interference edges.
func (g *Graph) NumEdges() int { return g.nedges }

// Class returns the register class of node a.
func (g *Graph) Class(a int32) ir.Class { return g.class[a] }

func edgeKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// AddEdge records an interference between a and b. Self-edges and
// cross-class pairs are ignored; duplicate edges are not recorded
// twice.
func (g *Graph) AddEdge(a, b int32) {
	if a == b || g.class[a] != g.class[b] {
		return
	}
	if g.bits != nil {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		i := triIndex(lo, hi)
		if g.bits[i/64]&(1<<uint(i%64)) != 0 {
			return
		}
		g.bits[i/64] |= 1 << uint(i%64)
	} else if !g.eset.insert(edgeKey(a, b)) {
		return
	}
	g.nedges++
	g.ea = append(g.ea, a)
	g.eb = append(g.eb, b)
	g.dirty = true
}

// Interfere reports whether a and b interfere.
func (g *Graph) Interfere(a, b int32) bool {
	if a == b {
		return false
	}
	if g.bits != nil {
		if a > b {
			a, b = b, a
		}
		i := triIndex(a, b)
		return g.bits[i/64]&(1<<uint(i%64)) != 0
	}
	return g.eset.has(edgeKey(a, b))
}

// Finalize compiles the edge log into the CSR adjacency. Queries do
// this lazily, so calling Finalize is never required — but doing it
// once after the build phase keeps the compile out of the first timed
// (or concurrent) query. Further AddEdge calls mark the CSR stale
// and the next query (or Finalize) recompiles it.
func (g *Graph) Finalize() {
	if !g.dirty {
		return
	}
	// Counting pass: off[a+1] accumulates a's degree.
	if cap(g.off) < g.n+1 {
		g.off = make([]int32, g.n+1)
	} else {
		g.off = g.off[:g.n+1]
		for i := range g.off {
			g.off[i] = 0
		}
	}
	for i := range g.ea {
		g.off[g.ea[i]+1]++
		g.off[g.eb[i]+1]++
	}
	for i := 0; i < g.n; i++ {
		g.off[i+1] += g.off[i]
	}
	// Fill pass, replaying the log in insertion order: each edge
	// appends b to a's row and a to b's row exactly as the per-node
	// vectors did, so row order is byte-identical to the old layout.
	total := int(g.off[g.n])
	if cap(g.csr) < total {
		g.csr = make([]int32, total)
	} else {
		g.csr = g.csr[:total]
	}
	cur := make([]int32, g.n)
	for i := range g.ea {
		a, b := g.ea[i], g.eb[i]
		g.csr[g.off[a]+cur[a]] = b
		cur[a]++
		g.csr[g.off[b]+cur[b]] = a
		cur[b]++
	}
	g.dirty = false
}

// Neighbors returns a's adjacency row. The caller must not modify
// it, and must not hold it across a later AddEdge (which recompiles
// the CSR).
func (g *Graph) Neighbors(a int32) []int32 {
	if g.dirty {
		g.Finalize()
	}
	return g.csr[g.off[a]:g.off[a+1]]
}

// Degree returns the full degree of a (ignoring any removals done by
// a Worklist).
func (g *Graph) Degree(a int32) int {
	if g.dirty {
		g.Finalize()
	}
	return int(g.off[a+1] - g.off[a])
}

// MaxDegree returns the largest full degree in the graph (0 for an
// empty graph) in one pass over the offset table.
func (g *Graph) MaxDegree() int {
	if g.dirty {
		g.Finalize()
	}
	max := int32(0)
	for a := 0; a < g.n; a++ {
		if d := g.off[a+1] - g.off[a]; d > max {
			max = d
		}
	}
	return int(max)
}

// Build constructs the interference graph of f. A register defined
// at a point interferes with every register (of its class) live
// after that point, except — for a copy instruction — the copy's
// source. That exception is Chaitin's: the move dst/src pair should
// be coalescable, not conflicting, when dst's value is just src's.
func Build(f *ir.Func) *Graph {
	return BuildTraced(f, nil)
}

// BuildTraced is Build with an observability tracer: the finished
// graph's node and edge totals, and the interference-query work done
// while building (edge insertions attempted, including duplicates
// the edge-hash rejected), are emitted as build-phase counters. A
// nil tracer makes it identical to Build.
//
// Both Build and BuildTraced compute liveness from scratch; callers
// holding a current liveness (the allocator's per-pass cache) should
// use BuildWithLiveness.
func BuildTraced(f *ir.Func, tr *obs.Tracer) *Graph {
	return BuildWithLiveness(f, dataflow.ComputeLiveness(f), 1, tr)
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("ig.Graph{nodes: %d, edges: %d}", g.n, g.nedges)
}

// edgeSet is a flat open-addressing hash set of packed edge keys
// (linear probing, power-of-two capacity, grown at 75% load). Keys
// are edgeKey values, which are never zero — the packed low half is
// the larger endpoint of a non-self edge, so it is at least 1 — which
// frees zero to mean "empty slot". Compared to map[uint64]struct{}
// it stores 8 bytes per slot with no per-entry allocation, which is
// the difference between fitting a 10^7-edge membership set in
// memory and not.
type edgeSet struct {
	slots []uint64
	used  int
}

const edgeSetMinSlots = 1024

func (s *edgeSet) init(hint int) {
	n := edgeSetMinSlots
	if hint > 0 {
		// Size for hint keys at < 75% load.
		for n < hint+hint/2 {
			n <<= 1
		}
	}
	s.slots = make([]uint64, n)
	s.used = 0
}

// slot returns the starting probe index for key k.
func (s *edgeSet) slot(k uint64) int {
	// Fibonacci hashing spreads the packed (a,b) keys, whose low bits
	// are consecutive node numbers, across the table.
	return int((k * 0x9E3779B97F4A7C15) >> (64 - uint(bits.TrailingZeros(uint(len(s.slots))))))
}

func (s *edgeSet) has(k uint64) bool {
	if len(s.slots) == 0 {
		return false
	}
	mask := len(s.slots) - 1
	for i := s.slot(k); ; i = (i + 1) & mask {
		v := s.slots[i]
		if v == k {
			return true
		}
		if v == 0 {
			return false
		}
	}
}

// insert adds k and reports whether it was new.
func (s *edgeSet) insert(k uint64) bool {
	if len(s.slots) == 0 {
		s.init(0)
	}
	if 4*(s.used+1) > 3*len(s.slots) {
		s.grow()
	}
	mask := len(s.slots) - 1
	for i := s.slot(k); ; i = (i + 1) & mask {
		v := s.slots[i]
		if v == k {
			return false
		}
		if v == 0 {
			s.slots[i] = k
			s.used++
			return true
		}
	}
}

func (s *edgeSet) grow() {
	old := s.slots
	s.slots = make([]uint64, 2*len(old))
	s.used = 0
	for _, k := range old {
		if k != 0 {
			s.insert(k)
		}
	}
}
