package liverange_test

import (
	"testing"

	"regalloc/internal/ir"
	"regalloc/internal/irinterp"
	"regalloc/internal/liverange"
)

// disjointWebs builds a function where one variable x holds two
// completely independent values:
//
//	x = 1 ; y = x+x ; x = 2 ; z = x+y ; ret z
//
// Renumbering must split x into two live ranges.
func disjointWebs() *ir.Func {
	f := &ir.Func{Name: "W"}
	x := f.NewReg(ir.ClassInt)
	y := f.NewReg(ir.ClassInt)
	z := f.NewReg(ir.ClassInt)
	b := f.NewBlock()
	b.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: x, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1},
		{Op: ir.OpAdd, Dst: y, A: x, B: x, C: ir.NoReg},
		{Op: ir.OpConst, Dst: x, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 2},
		{Op: ir.OpAdd, Dst: z, A: x, B: y, C: ir.NoReg},
		{Op: ir.OpRet, Dst: ir.NoReg, A: z, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	return f
}

func TestSplitsDisjointWebs(t *testing.T) {
	f := disjointWebs()
	before := f.NumRegs()
	n := liverange.Renumber(f)
	if n != f.NumRegs() {
		t.Fatalf("Renumber returned %d but function has %d regs", n, f.NumRegs())
	}
	if n != before+1 {
		t.Fatalf("expected %d webs (x split in two), got %d", before+1, n)
	}
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}
	// The two defs of the original x must now target different
	// registers.
	ins := f.Blocks[0].Instrs
	if ins[0].Dst == ins[2].Dst {
		t.Fatal("disjoint webs share a register after renumbering")
	}
	// And the uses must reference the right ones.
	if ins[1].A != ins[0].Dst || ins[3].A != ins[2].Dst {
		t.Fatal("uses rewritten to the wrong web")
	}
}

// loopWeb: a loop-carried variable (def before loop + def in loop,
// joined by the use around the back edge) must stay ONE web.
func loopWeb() (*ir.Func, ir.Reg) {
	f := &ir.Func{Name: "L"}
	i := f.NewReg(ir.ClassInt)
	n := f.NewReg(ir.ClassInt)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b0.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: i, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 0},
		{Op: ir.OpConst, Dst: n, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 10},
		{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg},
	}
	b0.Succs = []int{1}
	b1.Instrs = []ir.Instr{
		{Op: ir.OpAddI, Dst: i, A: i, B: ir.NoReg, C: ir.NoReg, Imm: 1},
		{Op: ir.OpBrIf, Dst: ir.NoReg, A: i, B: n, C: ir.NoReg, Cmp: ir.CmpLT},
	}
	b1.Succs = []int{1, 2}
	b2.Instrs = []ir.Instr{{Op: ir.OpRet, Dst: ir.NoReg, A: i, B: ir.NoReg, C: ir.NoReg}}
	f.RecomputePreds()
	return f, i
}

func TestLoopCarriedStaysOneWeb(t *testing.T) {
	f, _ := loopWeb()
	liverange.Renumber(f)
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}
	// The def in b0, the def+use in b1, and the use in b2 must all
	// refer to one register.
	d0 := f.Blocks[0].Instrs[0].Dst
	d1 := f.Blocks[1].Instrs[0].Dst
	u1 := f.Blocks[1].Instrs[0].A
	u2 := f.Blocks[2].Instrs[0].A
	if d0 != d1 || d1 != u1 || u1 != u2 {
		t.Fatalf("loop-carried variable split: %v %v %v %v", d0, d1, u1, u2)
	}
}

func TestSemanticsPreservedByRenumber(t *testing.T) {
	f := disjointWebs()
	p := ir.NewProgram(0)
	p.Add(f.Clone())
	ref, err := irinterp.New(p, 1024).Call("W")
	if err != nil {
		t.Fatal(err)
	}
	liverange.Renumber(f)
	p2 := ir.NewProgram(0)
	p2.Add(f)
	got, err := irinterp.New(p2, 1024).Call("W")
	if err != nil {
		t.Fatal(err)
	}
	if got.I != ref.I {
		t.Fatalf("renumbering changed the result: %d vs %d", got.I, ref.I)
	}
}

func TestSpillTempFlagPreserved(t *testing.T) {
	f := &ir.Func{Name: "S"}
	x := f.NewSpillTemp(ir.ClassFloat)
	b := f.NewBlock()
	b.Instrs = []ir.Instr{
		{Op: ir.OpSpillLoad, Dst: x, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg},
		{Op: ir.OpRet, Dst: ir.NoReg, A: x, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	liverange.Renumber(f)
	found := false
	for r := 0; r < f.NumRegs(); r++ {
		if f.RegFlags(ir.Reg(r))&ir.FlagSpillTemp != 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("spill-temp flag lost by renumbering")
	}
}

func TestParamsRemapped(t *testing.T) {
	f := &ir.Func{Name: "P"}
	p0 := f.NewReg(ir.ClassInt)
	f.Params = []ir.Reg{p0}
	b := f.NewBlock()
	b.Instrs = []ir.Instr{
		{Op: ir.OpParam, Dst: p0, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 0},
		{Op: ir.OpRet, Dst: ir.NoReg, A: p0, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	liverange.Renumber(f)
	if f.Params[0] != f.Blocks[0].Instrs[0].Dst {
		t.Fatal("param register not remapped to its web")
	}
}

func TestLiveRangeSizes(t *testing.T) {
	f := disjointWebs()
	defs, uses := liverange.LiveRangeSizes(f)
	// reg 0 (x): 2 defs, 3 uses (x+x counts twice, then x+y once).
	if defs[0] != 2 || uses[0] != 3 {
		t.Fatalf("x: defs=%d uses=%d", defs[0], uses[0])
	}
}
