// corpus.go assembles the mixed request corpus: the paper's workload
// programs, generated interference graphs, and fuzzed mini-FORTRAN
// subroutines, each under a couple of allocator configurations. The
// corpus is finite and deterministic for a seed, so a long run
// revisits every item many times — which is exactly what exercises
// the service's result cache, and what makes the reported hit rate a
// meaningful number rather than an artifact of request ordering.
package main

import (
	"fmt"
	"strings"

	"regalloc/internal/fuzzgen"
	"regalloc/internal/graphgen"
	"regalloc/internal/ig"
	"regalloc/internal/workloads"
)

// corpusItem is one request body, pre-rendered.
type corpusItem struct {
	Name string
	Kind string // "src", "ig", or "fuzz"
	Body []byte // the JSON /v1/alloc request
}

type corpus struct {
	Items   []corpusItem
	Sources int
	Graphs  int
	Fuzzed  int
}

// jsonString renders s as a JSON string literal.
func jsonString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}

func srcBody(source, heuristic string) []byte {
	if heuristic == "" {
		return []byte(fmt.Sprintf(`{"source": %s}`, jsonString(source)))
	}
	return []byte(fmt.Sprintf(`{"source": %s, "heuristic": %q}`, jsonString(source), heuristic))
}

func igBody(g *ig.Graph, costs []float64, heuristic string, kint int) ([]byte, error) {
	var sb strings.Builder
	if err := graphgen.WriteGraph(&sb, g, costs); err != nil {
		return nil, err
	}
	return []byte(fmt.Sprintf(`{"source": %s, "input": "ig", "heuristic": %q, "kint": %d, "kfloat": %d}`,
		jsonString(sb.String()), heuristic, kint, kint)), nil
}

// buildCorpus assembles the full mix. seed varies only the fuzzed
// subroutines; the workload and graph halves are fixed, so two runs
// with the same seed load byte-identical corpora.
func buildCorpus(seed uint64) (*corpus, error) {
	c := &corpus{}

	// The paper's workload programs, each under the default and the
	// pessimistic configuration (distinct cache keys, same source).
	for _, w := range workloads.All() {
		for _, h := range []string{"", "chaitin"} {
			c.Items = append(c.Items, corpusItem{
				Name: w.Program + heuristicSuffix(h),
				Kind: "src",
				Body: srcBody(w.Source, h),
			})
			c.Sources++
		}
	}

	// Generated stress graphs: a sparse random graph, the paper's
	// Figure 3 cycle shape scaled up, and the SVD-like structured
	// generator.
	type gspec struct {
		name  string
		g     *ig.Graph
		costs []float64
	}
	var gens []gspec
	{
		g, costs := graphgen.Random(300, 0.05, 11)
		gens = append(gens, gspec{"random-300", g, costs})
	}
	{
		g, costs := graphgen.Cycle(64)
		gens = append(gens, gspec{"cycle-64", g, costs})
	}
	{
		g, costs := graphgen.SVDLike(40, 30, 6, 10, 3, 7)
		gens = append(gens, gspec{"svdlike-40x30", g, costs})
	}
	for _, ge := range gens {
		for _, h := range []string{"briggs", "chaitin"} {
			body, err := igBody(ge.g, ge.costs, h, 8)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", ge.name, err)
			}
			c.Items = append(c.Items, corpusItem{Name: ge.name + "/" + h, Kind: "ig", Body: body})
			c.Graphs++
		}
	}

	// Fuzzed subroutines: structurally valid programs the hand-written
	// corpus would never contain. The generator is deterministic per
	// seed, so these are stable request bodies too.
	for i := uint64(0); i < 4; i++ {
		src := fuzzgen.Generate(seed+i, fuzzgen.Config{})
		c.Items = append(c.Items, corpusItem{
			Name: fmt.Sprintf("fuzz-%d", seed+i),
			Kind: "fuzz",
			Body: srcBody(src, ""),
		})
		c.Fuzzed++
	}

	return c, nil
}

func heuristicSuffix(h string) string {
	if h == "" {
		return ""
	}
	return "/" + h
}
