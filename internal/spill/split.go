package spill

import (
	"regalloc/internal/cfg"
	"regalloc/internal/ir"
)

// Live-range splitting — the direction the paper's §4 names as
// future work ("We may also explore live range splitting as a means
// for improving the overall allocation"), made concrete in the
// simplest profitable form: when a spilled range is *used* inside a
// loop it is not *defined* in, reload it once in the loop's
// preheader into a fresh loop-long subrange instead of reloading
// before every use. Definitions still store to the home slot
// immediately (so the slot is always current and any mix of split
// and everywhere references stays coherent); uses outside loops, or
// in loops that also define the range, fall back to per-use
// reloads.
//
// The subranges are flagged FlagSplitTemp: they carry ordinary spill
// costs and may be spilled again, but a re-spill uses the
// everywhere strategy — re-splitting would recreate the identical
// range and never converge.

// InsertCodeSplit rewrites f so every register in spilled lives in
// memory, using loop-preheader reloads where profitable. info must
// be the analysis of f *before* this call (the rewrite inserts
// preheader blocks).
func InsertCodeSplit(f *ir.Func, spilled []ir.Reg, info *cfg.Info) Stats {
	var st Stats
	origBlocks := len(f.Blocks)

	slot := make(map[ir.Reg]int64, len(spilled))
	splittable := make(map[ir.Reg]bool, len(spilled))
	for _, r := range spilled {
		slot[r] = f.NewSlot()
		st.Slots++
		splittable[r] = f.RegFlags(r)&ir.FlagSplitTemp == 0
	}

	// innermost[b] = index into info.Loops of the smallest loop
	// containing block b, or -1.
	innermost := make([]int, origBlocks)
	for i := range innermost {
		innermost[i] = -1
	}
	for li, l := range info.Loops {
		for _, b := range l.Blocks {
			if innermost[b] == -1 || len(l.Blocks) < len(info.Loops[innermost[b]].Blocks) {
				innermost[b] = li
			}
		}
	}

	// Which loops define / use each spilled register?
	defsIn := make([]map[ir.Reg]bool, len(info.Loops))
	usesIn := make([]map[ir.Reg]bool, len(info.Loops))
	for li := range info.Loops {
		defsIn[li] = make(map[ir.Reg]bool)
		usesIn[li] = make(map[ir.Reg]bool)
	}
	var ubuf []ir.Reg
	for li, l := range info.Loops {
		for _, bid := range l.Blocks {
			b := f.Blocks[bid]
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if d := in.Def(); d != ir.NoReg {
					if _, isSpilled := slot[d]; isSpilled {
						defsIn[li][d] = true
					}
				}
				ubuf = in.AppendUses(ubuf[:0])
				for _, u := range ubuf {
					if _, isSpilled := slot[u]; isSpilled {
						usesIn[li][u] = true
					}
				}
			}
		}
	}

	// Decide the split temps: (innermost loop, reg) pairs where the
	// loop uses but does not define the register.
	type key struct {
		loop int
		reg  ir.Reg
	}
	temp := make(map[key]ir.Reg)
	var preheader []*ir.Block // by loop index; nil = none yet
	preheader = make([]*ir.Block, len(info.Loops))
	for li, l := range info.Loops {
		for _, r := range spilled {
			if !splittable[r] || !usesIn[li][r] || defsIn[li][r] {
				continue
			}
			// Only split at the *innermost* level: the use sites
			// choose their own innermost loop, so create the temp
			// only if some use's innermost loop is this one.
			used := false
			for _, bid := range l.Blocks {
				if innermost[bid] != li {
					continue
				}
				b := f.Blocks[bid]
				for i := range b.Instrs {
					ubuf = b.Instrs[i].AppendUses(ubuf[:0])
					for _, u := range ubuf {
						if u == r {
							used = true
						}
					}
				}
			}
			if !used {
				continue
			}
			if preheader[li] == nil {
				inLoop := make(map[int]bool, len(l.Blocks))
				for _, bid := range l.Blocks {
					inLoop[bid] = true
				}
				preheader[li] = cfg.InsertPreheader(f, inLoop, l.Header)
			}
			t := f.NewReg(f.RegClass(r))
			f.SetRegFlags(t, f.RegFlags(r)|ir.FlagSplitTemp)
			temp[key{li, r}] = t
			// Load before the preheader's terminator.
			pre := preheader[li]
			term := pre.Instrs[len(pre.Instrs)-1]
			pre.Instrs = append(pre.Instrs[:len(pre.Instrs)-1],
				ir.Instr{Op: ir.OpSpillLoad, Dst: t, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: slot[r]},
				term)
			st.SplitLoads++
		}
	}

	// Rewrite the original blocks.
	for bid := 0; bid < origBlocks; bid++ {
		b := f.Blocks[bid]
		li := innermost[bid]
		out := make([]ir.Instr, 0, len(b.Instrs))
		for i := range b.Instrs {
			in := b.Instrs[i]

			var reloaded map[ir.Reg]ir.Reg
			reload := func(u ir.Reg) ir.Reg {
				if u == ir.NoReg {
					return u
				}
				s, isSpilled := slot[u]
				if !isSpilled {
					return u
				}
				if li >= 0 {
					if t, ok := temp[key{li, u}]; ok {
						return t
					}
				}
				if t, ok := reloaded[u]; ok {
					return t
				}
				t := f.NewSpillTemp(f.RegClass(u))
				out = append(out, ir.Instr{Op: ir.OpSpillLoad, Dst: t, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: s})
				st.Loads++
				if reloaded == nil {
					reloaded = make(map[ir.Reg]ir.Reg, 2)
				}
				reloaded[u] = t
				return t
			}
			in.A = reload(in.A)
			in.B = reload(in.B)
			in.C = reload(in.C)
			for j, a := range in.Args {
				in.Args[j] = reload(a)
			}

			if d := in.Def(); d != ir.NoReg {
				if s, isSpilled := slot[d]; isSpilled {
					t := f.NewSpillTemp(f.RegClass(d))
					in.Dst = t
					out = append(out, in)
					out = append(out, ir.Instr{Op: ir.OpSpillStore, Dst: ir.NoReg, A: t, B: ir.NoReg, C: ir.NoReg, Imm: s})
					st.Stores++
					continue
				}
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	return st
}
