// Package color implements the three coloring heuristics the paper
// compares:
//
//   - Chaitin's pessimistic heuristic (§2.1): simplify removes
//     trivially-colorable nodes; when stuck it marks the node with
//     the smallest cost/degree ratio as spilled and discards it.
//     If anything was marked, coloring is skipped and spill code is
//     inserted immediately.
//   - The Briggs et al. optimistic heuristic (§2.2–2.3): identical
//     simplification order — including Chaitin's cost/degree choice
//     when stuck — but spill candidates are pushed on the stack like
//     every other node. The select phase colors optimistically and
//     only the nodes that actually receive no color are spilled.
//   - Matula–Beck smallest-last (§2.2): remove a minimum-degree node
//     at every step, cost-blind, with optimistic selection. Included
//     as the linear-time comparator discussed in §3.3.
//
// All three share the degree-bucket worklist (ig.Worklist), so the
// simplification order is identical wherever the heuristics agree,
// and ties are broken identically (lowest live-range number, the
// paper's footnote 4).
package color

import (
	"fmt"
	"math"
	"sync"

	"regalloc/internal/ig"
	"regalloc/internal/ir"
	"regalloc/internal/obs"
)

// Heuristic selects a coloring algorithm.
type Heuristic int

// Heuristics.
const (
	Chaitin Heuristic = iota
	Briggs
	MatulaBeck
	// SSA selects the SSA-form chordal allocator instead of a
	// simplify order: construction, pre-spilling, and dominance-order
	// greedy coloring all live in internal/ssa, dispatched by the
	// alloc driver.
	SSA
	// IRC selects George–Appel iterated register coalescing: the
	// Build/Simplify/Coalesce/Freeze/Spill/Select worklist machine in
	// internal/irc, dispatched by the alloc driver. Coalescing is
	// interleaved with simplification (conservatively, so it never
	// creates spills) instead of running as a pre-pass.
	IRC
)

var heuristicNames = [...]string{"chaitin", "briggs", "matula-beck", "ssa", "irc"}

func (h Heuristic) String() string {
	if int(h) < len(heuristicNames) {
		return heuristicNames[h]
	}
	return fmt.Sprintf("Heuristic(%d)", int(h))
}

// HeuristicSpellings enumerates every name ParseHeuristic accepts,
// grouped by heuristic with aliases slash-separated. Error messages
// and CLI/API docs render it, so the list of legal values has one
// source of truth.
const HeuristicSpellings = "chaitin/old, briggs/new/optimistic, matula-beck/mb/smallest-last, ssa/chordal, irc/iterated"

// ParseHeuristic resolves a heuristic by name; the accepted spellings
// are HeuristicSpellings. An unknown name yields an error that
// enumerates them.
func ParseHeuristic(s string) (Heuristic, error) {
	switch s {
	case "chaitin", "old":
		return Chaitin, nil
	case "briggs", "new", "optimistic":
		return Briggs, nil
	case "matula-beck", "mb", "smallest-last":
		return MatulaBeck, nil
	case "ssa", "chordal":
		return SSA, nil
	case "irc", "iterated":
		return IRC, nil
	}
	return 0, fmt.Errorf("unknown heuristic %q (accepted: %s)", s, HeuristicSpellings)
}

// Metric selects the spill-choice figure of merit when simplify is
// stuck. The paper uses cost/degree; the alternatives exist for the
// ablation study in EXPERIMENTS.md.
type Metric int

// Metrics.
const (
	CostOverDegree Metric = iota // Chaitin's choice (the default)
	CostOnly                     // spill the cheapest range outright
	DegreeOnly                   // spill the highest-degree range
)

// K maps a register class to the number of available colors.
type K func(ir.Class) int

// NumColors returns a K for the common two-class machine.
func NumColors(kInt, kFloat int) K {
	return func(c ir.Class) int {
		if c == ir.ClassInt {
			return kInt
		}
		return kFloat
	}
}

// SimplifyResult is the output of the simplification phase.
type SimplifyResult struct {
	// Stack is the removal order; Select colors from the end.
	Stack []int32
	// SpillMarked lists nodes Chaitin's heuristic marked for
	// spilling (removed from the graph, not stacked). Empty for
	// Briggs and Matula–Beck.
	SpillMarked []int32
	// Candidates lists the nodes removed while stuck (degree >= k at
	// removal). For Chaitin it equals SpillMarked; for Briggs these
	// are the optimistically stacked potential spills.
	Candidates []int32
	// ScanSteps is the total bucket-scan work, for the linearity
	// check.
	ScanSteps int
}

// Scratch holds the reusable working state of one simplify+select
// round: the degree-bucket worklists, the removal stack, and the
// select-phase color buffers. Reusing one Scratch across the passes
// of the Figure 4 cycle (or across coloring runs on a fixed graph)
// makes the steady-state coloring pass allocation-free — the
// property TestColoringPassAllocs pins with testing.AllocsPerRun.
// A Scratch is not safe for concurrent use; the zero value is ready.
type Scratch struct {
	wl  ig.Worklist
	res SimplifyResult

	colors   []int16
	inserted []bool
	used     []bool
	uncol    []int32
}

// scratchPool feeds the non-Into entry points, so even callers that
// never thread a Scratch stop paying per-call worklist allocations
// once the pool is warm.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// Simplify runs the simplification phase of heuristic h over g.
// cost[n] is the estimated spill cost of node n (ignored by
// MatulaBeck).
func Simplify(g *ig.Graph, cost []float64, k K, h Heuristic, metric Metric) *SimplifyResult {
	return SimplifyTraced(g, cost, k, h, metric, nil)
}

// SimplifyTraced is Simplify with an observability tracer: each time
// the phase is stuck and falls back on the spill-choice metric, the
// picked node, its current degree, its cost, and the metric value
// that won are emitted as a spill-decision event. A nil tracer makes
// it identical to Simplify.
func SimplifyTraced(g *ig.Graph, cost []float64, k K, h Heuristic, metric Metric, tr *obs.Tracer) *SimplifyResult {
	sc := scratchPool.Get().(*Scratch)
	res := SimplifyInto(sc, g, cost, k, h, metric, tr)
	// The result escapes the pool round-trip: copy the slices out so
	// the scratch can be reused immediately.
	out := &SimplifyResult{
		Stack:       append([]int32(nil), res.Stack...),
		SpillMarked: append([]int32(nil), res.SpillMarked...),
		Candidates:  append([]int32(nil), res.Candidates...),
		ScanSteps:   res.ScanSteps,
	}
	scratchPool.Put(sc)
	return out
}

// SimplifyInto is SimplifyTraced into caller-owned scratch: the
// returned result's slices alias sc and stay valid until the next
// SimplifyInto on the same scratch. This is the allocation-free
// entry point the per-pass cycle uses.
func SimplifyInto(sc *Scratch, g *ig.Graph, cost []float64, k K, h Heuristic, metric Metric, tr *obs.Tracer) *SimplifyResult {
	return SimplifyPreInto(sc, g, nil, cost, k, h, metric, tr)
}

// SimplifyPreInto is SimplifyInto over a graph with precolored nodes:
// pre[n] >= 0 fixes node n's color, and such nodes never enter the
// worklist — they are not simplified, never spill candidates, and
// keep contributing their (effectively infinite) degree pressure to
// every neighbor for the whole phase. cost may cover only the
// uncolored prefix; precolored nodes never have their cost read.
// A nil pre is the plain SimplifyInto.
func SimplifyPreInto(sc *Scratch, g *ig.Graph, pre []int16, cost []float64, k K, h Heuristic, metric Metric, tr *obs.Tracer) *SimplifyResult {
	res := &sc.res
	res.Stack = res.Stack[:0]
	res.SpillMarked = res.SpillMarked[:0]
	res.Candidates = res.Candidates[:0]
	res.ScanSteps = 0
	// The integer and float subgraphs are disjoint; simplify each.
	for _, cls := range []ir.Class{ir.ClassInt, ir.ClassFloat} {
		simplifyClass(sc, g, pre, cost, k(cls), cls, h, metric, res, tr)
	}
	return res
}

func simplifyClass(sc *Scratch, g *ig.Graph, pre []int16, cost []float64, k int, cls ir.Class, h Heuristic, metric Metric, res *SimplifyResult, tr *obs.Tracer) {
	w := &sc.wl
	w.InitPre(g, cls, pre)
	for w.Remaining() > 0 {
		n := w.MinDegreeNode()
		if h == MatulaBeck || int(w.Degree(n)) < k {
			// Trivially colorable (or cost-blind smallest-last).
			w.Remove(n)
			res.Stack = append(res.Stack, n)
			continue
		}
		// Stuck: every remaining node has degree >= k. Fall back on
		// the spill-choice metric (paper §2.3).
		pick, val := chooseSpill(w, cost, metric)
		tr.SpillDecision(pick, w.Degree(pick), cost[pick], val)
		w.Remove(pick)
		res.Candidates = append(res.Candidates, pick)
		if h == Chaitin {
			res.SpillMarked = append(res.SpillMarked, pick)
		} else {
			res.Stack = append(res.Stack, pick)
		}
	}
	res.ScanSteps += w.ScanSteps
}

// chooseSpill picks the node to remove while stuck and returns it
// with its metric value. Ties are broken toward the lowest node
// number. The scan is a plain loop rather than ForEachRemaining: the
// closure that callback needs heap-escapes its captures on every
// stuck step, and this is the one piece of simplify that runs per
// spill decision on the zero-allocation pass path.
func chooseSpill(w *ig.Worklist, cost []float64, metric Metric) (int32, float64) {
	best := int32(-1)
	bestVal := math.Inf(1)
	for i, n := 0, w.NumNodes(); i < n; i++ {
		a := int32(i)
		if !w.InClass(a) || w.Removed(a) {
			continue
		}
		var v float64
		switch metric {
		case CostOnly:
			v = cost[a]
		case DegreeOnly:
			v = -float64(w.Degree(a))
		default:
			v = cost[a] / float64(w.Degree(a))
		}
		if best == -1 || v < bestVal {
			best = a
			bestVal = v
		}
	}
	return best, bestVal
}

// NoColor marks an uncolored (spilled) node in a color assignment.
const NoColor int16 = -1

// Select runs the coloring phase: nodes are reinserted in reverse
// removal order and given the lowest color unused by their already-
// colored neighbors.
//
// With optimistic=false (Chaitin), failure to find a color panics —
// the caller must only invoke Select when simplification marked
// nothing for spilling, in which case coloring is guaranteed.
// With optimistic=true (Briggs, Matula–Beck), colorless nodes stay
// NoColor and are returned as the spill set.
func Select(g *ig.Graph, stack []int32, k K, optimistic bool) (colors []int16, uncolored []int32) {
	return SelectTraced(g, &SimplifyResult{Stack: stack}, k, optimistic, nil)
}

// SelectTraced is Select over a full SimplifyResult, with an
// observability tracer. Whenever a node that simplify removed as a
// spill candidate (sr.Candidates: degree >= k at removal) receives a
// color after all, a color-reuse event is emitted carrying the
// node's degree, the number of distinct colors its already-colored
// neighbors occupy, and the color assigned — the event stream that
// witnesses *why* optimistic coloring beats Chaitin (§2.2: many
// high-degree nodes have neighbors that reuse few colors). A nil
// tracer makes it identical to Select.
func SelectTraced(g *ig.Graph, sr *SimplifyResult, k K, optimistic bool, tr *obs.Tracer) (colors []int16, uncolored []int32) {
	sc := scratchPool.Get().(*Scratch)
	cbuf, ubuf := SelectInto(sc, g, sr, k, optimistic, tr)
	colors = append([]int16(nil), cbuf...)
	if len(ubuf) > 0 {
		uncolored = append([]int32(nil), ubuf...)
	}
	scratchPool.Put(sc)
	return colors, uncolored
}

// SelectInto is SelectTraced into caller-owned scratch: the returned
// slices alias sc and stay valid until the next SelectInto on the
// same scratch. Callers that keep a finished coloring (the final
// pass) must copy it out before reusing the scratch.
func SelectInto(sc *Scratch, g *ig.Graph, sr *SimplifyResult, k K, optimistic bool, tr *obs.Tracer) (colors []int16, uncolored []int32) {
	return SelectPreInto(sc, g, nil, sr, k, optimistic, tr)
}

// SelectPreInto is SelectInto over a graph with precolored nodes:
// before the stack is replayed, every node with pre[n] >= 0 is seeded
// with its fixed color as already inserted, so the reinserted nodes
// color around the physical registers exactly as they colored around
// each other. Simplification (SimplifyPreInto) kept precolored
// degrees intact, so Chaitin's guarantee — a stacked node saw fewer
// than k neighbors, precolored included — still holds and the
// pessimistic path cannot run out of colors. A nil pre is the plain
// SelectInto.
func SelectPreInto(sc *Scratch, g *ig.Graph, pre []int16, sr *SimplifyResult, k K, optimistic bool, tr *obs.Tracer) (colors []int16, uncolored []int32) {
	stack := sr.Stack
	var candidate []bool
	if tr.Enabled() && len(sr.Candidates) > 0 {
		candidate = make([]bool, g.NumNodes())
		for _, n := range sr.Candidates {
			candidate[n] = true
		}
	}
	colors = growInt16(sc.colors, g.NumNodes())
	sc.colors = colors
	for i := range colors {
		colors[i] = NoColor
	}
	inserted := growBool(sc.inserted, g.NumNodes())
	sc.inserted = inserted
	for i := range inserted {
		inserted[i] = false
	}
	for n, c := range pre {
		if c >= 0 {
			colors[n] = c
			inserted[n] = true
		}
	}
	used := sc.used
	sc.uncol = sc.uncol[:0]
	for i := len(stack) - 1; i >= 0; i-- {
		n := stack[i]
		kn := k(g.Class(n))
		if cap(used) < kn {
			used = make([]bool, kn)
		}
		used = used[:kn]
		for j := range used {
			used[j] = false
		}
		for _, nb := range g.Neighbors(n) {
			if inserted[nb] && colors[nb] != NoColor && int(colors[nb]) < kn {
				used[colors[nb]] = true
			}
		}
		c := int16(NoColor)
		inUse := 0
		if candidate == nil {
			for j := 0; j < kn; j++ {
				if !used[j] {
					c = int16(j)
					break
				}
			}
		} else {
			// Traced path: also count the distinct colors in use, the
			// quantity the color-reuse event reports.
			for j := 0; j < kn; j++ {
				if used[j] {
					inUse++
				} else if c == NoColor {
					c = int16(j)
				}
			}
		}
		inserted[n] = true
		if c == NoColor {
			if !optimistic {
				panic("color: pessimistic Select ran out of colors; simplify guaranteed this cannot happen")
			}
			sc.uncol = append(sc.uncol, n)
			continue
		}
		colors[n] = c
		if candidate != nil && candidate[n] {
			tr.ColorReuse(n, int32(g.Degree(n)), inUse, c)
		}
	}
	sc.used = used
	if len(sc.uncol) > 0 {
		uncolored = sc.uncol
	}
	return colors, uncolored
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growInt16(s []int16, n int) []int16 {
	if cap(s) < n {
		return make([]int16, n)
	}
	return s[:n]
}

// Verify checks that an assignment is a proper coloring: no two
// interfering nodes share a color and every color is within its
// class bound. Spilled (NoColor) nodes are ignored. It returns an
// error describing the first violation.
func Verify(g *ig.Graph, colors []int16, k K) error {
	for a := int32(0); a < int32(g.NumNodes()); a++ {
		if colors[a] == NoColor {
			continue
		}
		if int(colors[a]) >= k(g.Class(a)) {
			return fmt.Errorf("node %d has color %d, out of range for class %s (k=%d)",
				a, colors[a], g.Class(a), k(g.Class(a)))
		}
		for _, nb := range g.Neighbors(a) {
			if nb > a && colors[nb] == colors[a] {
				return fmt.Errorf("interfering nodes %d and %d share color %d", a, nb, colors[a])
			}
		}
	}
	return nil
}
