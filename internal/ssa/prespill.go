package ssa

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"regalloc/internal/color"
	"regalloc/internal/ir"
	"regalloc/internal/spill"
)

// ErrIrreducible reports pressure no spilling can lower: some single
// program point (typically a call's operand list) needs more
// simultaneously-live registers of one class than K provides. The
// Chaitin path reports the same situation as "a spill temporary must
// itself spill".
var ErrIrreducible = errors.New("register pressure is irreducible by spilling")

// PreSpill lowers register pressure below the color budget before
// coloring runs: while some class's MAXLIVE exceeds its K, the round
// picks — at every over-pressure program point — the cheapest values
// that are live through the point (a value an instruction itself
// reads or writes must be in a register there), and spills them
// everywhere. Phi destinations spill by rewriting the phi into
// per-predecessor slot stores; phi arguments reload at the end of
// the feeding predecessor. Because pressure afterwards is at most K
// at every point, the greedy dominance-order colorer cannot run out
// of colors.
//
// It returns the final Analysis (valid for the code as rewritten)
// and the per-round statistics. An instruction needing more than K
// simultaneously-live operands of one class makes the pressure
// irreducible; that is reported as an error, as is failure to
// converge within maxPreSpillRounds.
func PreSpill(ctx context.Context, s *Func, k color.K, params spill.CostParams) (*Analysis, []RoundStats, error) {
	f := s.F
	var rounds []RoundStats
	for round := 0; ; round++ {
		if err := ctx.Err(); err != nil {
			return nil, rounds, fmt.Errorf("ssa: %s: cancelled before pre-spill round %d: %w", f.Name, round, err)
		}
		a := Analyze(s)
		over := false
		for c := 0; c < ir.NumClasses; c++ {
			if a.MaxLive[c] > k(ir.Class(c)) {
				over = true
			}
		}
		if !over {
			return a, rounds, nil
		}
		if round == maxPreSpillRounds {
			return nil, rounds, fmt.Errorf("ssa: %s: pre-spilling did not converge after %d rounds", f.Name, maxPreSpillRounds)
		}
		rs := RoundStats{
			MaxLiveInt:   a.MaxLive[ir.ClassInt],
			MaxLiveFloat: a.MaxLive[ir.ClassFloat],
		}
		costs := spill.Costs(f, params)
		chosen, stuck := selectSpills(s, a, k, costs)
		if len(chosen) == 0 {
			return nil, rounds, fmt.Errorf("ssa: %s: %s: %w", f.Name, stuck, ErrIrreducible)
		}
		for _, r := range chosen {
			rs.SpillCost += costs[r]
			s.spilledEver[r] = true
		}
		rs.Spilled = len(chosen)
		rs.Loads, rs.Stores = insertSpillCode(s, chosen)
		rounds = append(rounds, rs)
	}
}

// selectSpills walks every program point with its live set and, at
// points whose per-class pressure exceeds K, greedily adds the
// cheapest spillable live-through values to the spill set until the
// point fits. Values already chosen count as removed at every later
// point of the walk. When some point stays over-pressure with no
// spillable candidate, the reason is reported via stuck.
func selectSpills(s *Func, a *Analysis, k color.K, costs []float64) ([]ir.Reg, string) {
	f := s.F
	nr := f.NumRegs()
	inSet := make([]bool, nr)
	var chosen []ir.Reg
	stuck := ""

	// banned marks registers the current point cannot spill: the
	// instruction's own operands and definition. Stamp-based so each
	// point's marking is O(operands).
	banned := make([]int, nr)
	for i := range banned {
		banned[i] = -1
	}
	stamp := 0

	classOf := func(r int) ir.Class { return f.RegClass(ir.Reg(r)) }
	spillable := func(r int) bool {
		return banned[r] != stamp && !inSet[r] &&
			f.RegFlags(ir.Reg(r))&ir.FlagSpillTemp == 0 &&
			!s.spilledEver[ir.Reg(r)] && !math.IsInf(costs[r], 1)
	}

	// reduce brings one over-pressure point down to the budget by
	// picking cheapest-first among live spillable values of class c,
	// returning the excess it could not cover.
	var cands []int
	reduce := func(live liveSet, c ir.Class, excess int) int {
		cands = cands[:0]
		live.forEach(func(r int) {
			if classOf(r) == c && spillable(r) {
				cands = append(cands, r)
			}
		})
		sort.Slice(cands, func(i, j int) bool {
			if costs[cands[i]] != costs[cands[j]] {
				return costs[cands[i]] < costs[cands[j]]
			}
			return cands[i] < cands[j]
		})
		for _, r := range cands {
			if excess <= 0 {
				break
			}
			inSet[r] = true
			chosen = append(chosen, ir.Reg(r))
			excess--
		}
		return excess
	}
	check := func(live liveSet) [ir.NumClasses]int {
		var short [ir.NumClasses]int
		var cnt [ir.NumClasses]int
		live.forEach(func(r int) {
			if !inSet[r] {
				cnt[classOf(r)]++
			}
		})
		for c := 0; c < ir.NumClasses; c++ {
			if excess := cnt[c] - k(ir.Class(c)); excess > 0 {
				short[c] = reduce(live, ir.Class(c), excess)
			}
		}
		return short
	}
	// note records the first genuinely uncoverable point.
	note := func(short [ir.NumClasses]int) {
		for c := 0; c < ir.NumClasses; c++ {
			if short[c] > 0 && stuck == "" {
				stuck = fmt.Sprintf("%d %s registers cannot hold one program point's operands", k(ir.Class(c)), ir.Class(c))
			}
		}
	}
	// spillPhiDsts covers pressure a block-exit point cannot shed
	// itself: phi arguments are reads "at the edge", so spilling them
	// only swaps in an equally-live reload temporary — but spilling
	// the *destinations* of the successor's phis removes those phis
	// entirely, turning the simultaneous register arguments into
	// sequenced slot stores. Cheapest destinations first.
	spillPhiDsts := func(b *ir.Block, short [ir.NumClasses]int) [ir.NumClasses]int {
		for _, sid := range b.Succs {
			phis := s.Phis[sid]
			if len(phis) == 0 {
				continue
			}
			for c := 0; c < ir.NumClasses; c++ {
				if short[c] <= 0 {
					continue
				}
				cands = cands[:0]
				for i := range phis {
					d := int(phis[i].Dst)
					if classOf(d) == ir.Class(c) && !inSet[d] &&
						f.RegFlags(phis[i].Dst)&ir.FlagSpillTemp == 0 && !s.spilledEver[phis[i].Dst] {
						cands = append(cands, d)
					}
				}
				sort.Slice(cands, func(i, j int) bool {
					if costs[cands[i]] != costs[cands[j]] {
						return costs[cands[i]] < costs[cands[j]]
					}
					return cands[i] < cands[j]
				})
				for _, d := range cands {
					if short[c] <= 0 {
						break
					}
					inSet[d] = true
					chosen = append(chosen, ir.Reg(d))
					short[c]--
				}
			}
		}
		return short
	}

	var ubuf []ir.Reg
	for _, b := range f.Blocks {
		live := newLiveSet(a.Live.Out[b.ID])
		// Block exit. Outgoing phi arguments are reads at the edge: a
		// spilled argument is replaced by a reload temporary at the
		// predecessor's end that is exactly as live, so spilling them
		// never helps this point — when live-through values alone
		// cannot cover the excess, spill the successor's phi
		// *destinations* instead, which dissolves those phis into
		// sequenced stores next round.
		stamp++
		note(spillPhiDsts(b, check(live)))
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			stamp++
			ubuf = in.AppendUses(ubuf[:0])
			for _, u := range ubuf {
				banned[u] = stamp
			}
			d := in.Def()
			if d != ir.NoReg {
				banned[d] = stamp
				if !live.has(int(d)) {
					// The dead-definition point: d plus liveAfter.
					live.add(int(d))
					note(check(live))
				}
				live.remove(int(d))
			}
			for _, u := range ubuf {
				live.add(int(u))
			}
			note(check(live))
		}
		// Block entry with the phi destinations defined. A phi
		// destination is spillable (the phi rewrites into stores),
		// so no ban applies here beyond the first instruction's — the
		// pressure here was already checked post-uses above, and phi
		// destinations only add to it.
		if phis := s.Phis[b.ID]; len(phis) > 0 {
			stamp++
			for i := range phis {
				live.add(int(phis[i].Dst))
			}
			note(check(live))
		}
	}
	return chosen, stuck
}

// liveSet pairs a bitset walk with membership bookkeeping; a thin
// wrapper so selectSpills reads naturally.
type liveSet struct{ bits map[int]bool }

func newLiveSet(src interface{ ForEach(func(int)) }) liveSet {
	ls := liveSet{bits: make(map[int]bool)}
	src.ForEach(func(r int) { ls.bits[r] = true })
	return ls
}
func (l liveSet) has(r int) bool { return l.bits[r] }
func (l liveSet) add(r int)      { l.bits[r] = true }
func (l liveSet) remove(r int)   { delete(l.bits, r) }
func (l liveSet) forEach(f func(r int)) {
	keys := make([]int, 0, len(l.bits))
	for r := range l.bits {
		keys = append(keys, r)
	}
	sort.Ints(keys)
	for _, r := range keys {
		f(r)
	}
}

// insertSpillCode sends every chosen value to a fresh spill slot,
// everywhere: a store after its (unique) definition, a reload into a
// fresh temporary before each use. Phi destinations rewrite the phi
// away into per-predecessor stores; phi arguments reload at the end
// of the feeding predecessor. Returns the load and store counts.
func insertSpillCode(s *Func, chosen []ir.Reg) (loads, stores int) {
	f := s.F
	slot := make(map[ir.Reg]int64, len(chosen))
	for _, r := range chosen {
		slot[r] = f.NewSlot()
	}
	spilled := func(r ir.Reg) bool {
		_, ok := slot[r]
		return ok
	}

	// Phase 1: rewrite the phi side table, queueing predecessor-end
	// code. Phis read in parallel before they write, so a load must
	// precede any store that overwrites the slot it reads — that can
	// only happen when a spilled value is both some phi's destination
	// and another phi's argument on the same edge, so only *those*
	// loads are hoisted to the front. Every other bounce pair emits
	// load-then-store adjacently: its temporary is live for just two
	// instructions, keeping the predecessor-end pressure down to one
	// transient temporary (plus the reloads that feed surviving phis,
	// which must reach the edge regardless and so go last).
	hoist := make([][]ir.Instr, len(f.Blocks))
	seq := make([][]ir.Instr, len(f.Blocks))
	tail := make([][]ir.Instr, len(f.Blocks))
	for _, b := range f.Blocks {
		phis := s.Phis[b.ID]
		if len(phis) == 0 {
			continue
		}
		storeSlots := make(map[int64]bool)
		for i := range phis {
			if spilled(phis[i].Dst) {
				storeSlots[slot[phis[i].Dst]] = true
			}
		}
		kept := phis[:0]
		for i := range phis {
			ph := phis[i]
			dstSp := spilled(ph.Dst)
			for j, arg := range ph.Args {
				p := b.Preds[j]
				cls := f.RegClass(arg)
				switch {
				case dstSp && spilled(arg):
					// Slot-to-slot: bounce through a temporary.
					t := f.NewSpillTemp(cls)
					ld := ir.Instr{Op: ir.OpSpillLoad, Dst: t, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: slot[arg]}
					st := ir.Instr{Op: ir.OpSpillStore, Dst: ir.NoReg, A: t, B: ir.NoReg, C: ir.NoReg, Imm: slot[ph.Dst]}
					if storeSlots[slot[arg]] {
						hoist[p] = append(hoist[p], ld)
						seq[p] = append(seq[p], st)
					} else {
						seq[p] = append(seq[p], ld, st)
					}
					loads++
					stores++
				case dstSp:
					seq[p] = append(seq[p],
						ir.Instr{Op: ir.OpSpillStore, Dst: ir.NoReg, A: arg, B: ir.NoReg, C: ir.NoReg, Imm: slot[ph.Dst]})
					stores++
				case spilled(arg):
					t := f.NewSpillTemp(cls)
					ld := ir.Instr{Op: ir.OpSpillLoad, Dst: t, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: slot[arg]}
					if storeSlots[slot[arg]] {
						hoist[p] = append(hoist[p], ld)
					} else {
						tail[p] = append(tail[p], ld)
					}
					loads++
					ph.Args[j] = t
				}
			}
			if !dstSp {
				kept = append(kept, ph)
			}
		}
		s.Phis[b.ID] = kept
	}
	atEnd := make([][]ir.Instr, len(f.Blocks))
	for i := range atEnd {
		atEnd[i] = append(append(hoist[i], seq[i]...), tail[i]...)
	}

	// Phase 2: rewrite instructions — reload before use, store after
	// definition — and splice the queued predecessor-end code in
	// front of each terminator.
	var ubuf []ir.Reg
	for _, b := range f.Blocks {
		out := make([]ir.Instr, 0, len(b.Instrs)+len(atEnd[b.ID]))
		for i := range b.Instrs {
			in := b.Instrs[i]
			if in.Op.IsTerminator() {
				out = append(out, atEnd[b.ID]...)
			}
			var reloaded map[ir.Reg]ir.Reg
			reload := func(u ir.Reg) ir.Reg {
				if u == ir.NoReg || !spilled(u) {
					return u
				}
				if t, ok := reloaded[u]; ok {
					return t
				}
				t := f.NewSpillTemp(f.RegClass(u))
				out = append(out, ir.Instr{Op: ir.OpSpillLoad, Dst: t, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: slot[u]})
				loads++
				if reloaded == nil {
					reloaded = make(map[ir.Reg]ir.Reg, 2)
				}
				reloaded[u] = t
				return t
			}
			ubuf = in.AppendUses(ubuf[:0])
			if len(ubuf) > 0 {
				in.A = reload(in.A)
				in.B = reload(in.B)
				in.C = reload(in.C)
				for ai := range in.Args {
					in.Args[ai] = reload(in.Args[ai])
				}
			}
			out = append(out, in)
			if d := in.Def(); d != ir.NoReg && spilled(d) {
				out = append(out, ir.Instr{Op: ir.OpSpillStore, Dst: ir.NoReg, A: d, B: ir.NoReg, C: ir.NoReg, Imm: slot[d]})
				stores++
			}
		}
		b.Instrs = out
	}
	return loads, stores
}
