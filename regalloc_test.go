package regalloc_test

import (
	"strings"
	"testing"

	"regalloc"
	"regalloc/internal/vm"
)

const demo = `
      INTEGER FUNCTION FIB(N)
      INTEGER A,B,T,I,N
      A = 0
      B = 1
      DO I = 1,N
         T = A + B
         A = B
         B = T
      ENDDO
      FIB = A
      END
`

func TestCompileAllocateRun(t *testing.T) {
	prog, err := regalloc.Compile(demo)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Functions(); len(got) != 1 || got[0] != "FIB" {
		t.Fatalf("functions: %v", got)
	}
	res, err := prog.Allocate("FIB", regalloc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveRanges() == 0 {
		t.Fatal("no live ranges")
	}
	code, results, err := prog.Assemble(regalloc.RTPC(), regalloc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if results["FIB"] == nil {
		t.Fatal("no per-unit result")
	}
	m := regalloc.NewVM(code, prog.MemWords())
	v, err := m.Call("FIB", vm.Int(30))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 832040 {
		t.Fatalf("fib(30) = %d", v.I)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := regalloc.Compile("      SUBROUTINE\n"); err == nil || !strings.Contains(err.Error(), "parse") {
		t.Fatalf("parse error not surfaced: %v", err)
	}
	if _, err := regalloc.Compile("      SUBROUTINE F(N)\n      X = NOPE(1)\n      END\n"); err == nil || !strings.Contains(err.Error(), "check") {
		t.Fatalf("check error not surfaced: %v", err)
	}
}

func TestAllocateUnknownUnit(t *testing.T) {
	prog, err := regalloc.Compile(demo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Allocate("NOPE", regalloc.DefaultOptions()); err == nil {
		t.Fatal("expected error")
	}
}

func TestCompileNoOptSameSemantics(t *testing.T) {
	optProg, err := regalloc.Compile(demo)
	if err != nil {
		t.Fatal(err)
	}
	noProg, err := regalloc.CompileNoOpt(demo)
	if err != nil {
		t.Fatal(err)
	}
	run := func(p *regalloc.Program) int64 {
		code, _, err := p.Assemble(regalloc.RTPC(), regalloc.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		v, err := regalloc.NewVM(code, p.MemWords()).Call("FIB", vm.Int(20))
		if err != nil {
			t.Fatal(err)
		}
		return v.I
	}
	if run(optProg) != run(noProg) {
		t.Fatal("optimizer changed FIB")
	}
}

// TestHeuristicAgreement: on this small function all heuristics find
// a spill-free coloring and the code behaves identically.
func TestHeuristicAgreement(t *testing.T) {
	prog, err := regalloc.Compile(demo)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []regalloc.Heuristic{regalloc.Chaitin, regalloc.Briggs, regalloc.MatulaBeck} {
		opt := regalloc.DefaultOptions()
		opt.Heuristic = h
		res, err := prog.Allocate("FIB", opt)
		if err != nil {
			t.Fatalf("%s: %v", h, err)
		}
		if res.TotalSpilled() != 0 {
			t.Fatalf("%s spilled on a trivial function", h)
		}
	}
}
