// Package spill estimates spill costs and inserts spill code.
//
// Costs follow Chaitin as described in §2.1 of the paper: the cost
// of spilling a live range is the number of loads and stores that
// would have to be inserted, each weighted by 10^depth of its loop
// nesting depth (and by the machine's memory-op latency, so the
// numbers read as estimated cycles).
//
// Spilling a range r stores r to its slot after every definition and
// reloads it into a fresh temporary before every use. The fresh
// temporaries are minimal live ranges flagged FlagSpillTemp; they
// receive infinite cost so they are never chosen for spilling again,
// which (together with their tiny degree) is what makes the
// build–simplify–color–spill iteration converge.
package spill

import (
	"math"

	"regalloc/internal/ir"
	"regalloc/internal/obs"
)

// CostParams tunes the cost estimator.
type CostParams struct {
	// DepthBase is the per-loop-level weight multiplier (paper: 10).
	DepthBase float64
	// MemOpWeight is the cycle cost of one load or store (the VM's
	// memory latency, 2).
	MemOpWeight float64
}

// DefaultCostParams returns the paper-faithful estimator settings.
func DefaultCostParams() CostParams {
	return CostParams{DepthBase: 10, MemOpWeight: 2}
}

// Costs computes the estimated spill cost of every register of f.
// Block depths must already be stamped (cfg.Analyze). Registers
// flagged as spill temporaries get +Inf.
func Costs(f *ir.Func, p CostParams) []float64 {
	costs := make([]float64, f.NumRegs())
	var ubuf []ir.Reg
	for _, b := range f.Blocks {
		w := p.MemOpWeight * math.Pow(p.DepthBase, float64(b.Depth))
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if d := in.Def(); d != ir.NoReg {
				costs[d] += w // a store after this definition
			}
			ubuf = in.AppendUses(ubuf[:0])
			for _, u := range ubuf {
				costs[u] += w // a load before this use
			}
		}
	}
	for r := 0; r < f.NumRegs(); r++ {
		if f.RegFlags(ir.Reg(r))&ir.FlagSpillTemp != 0 {
			costs[r] = math.Inf(1)
		}
	}
	return costs
}

// Stats reports the code inserted by InsertCode, InsertCodeRemat, or
// InsertCodeSplit.
type Stats struct {
	Loads      int
	Stores     int
	Slots      int
	Remats     int // constant recomputations replacing reloads
	SplitLoads int // preheader reloads shared by a whole loop
}

// Emit publishes the insertion totals as spill-phase counters on tr
// (no-op for a nil tracer), keeping the trace stream reconciled with
// the PassStats record.
func (s Stats) Emit(tr *obs.Tracer) {
	if !tr.Enabled() {
		return
	}
	tr.Counter(obs.PhaseSpill, "spill.loads", int64(s.Loads))
	tr.Counter(obs.PhaseSpill, "spill.stores", int64(s.Stores))
	tr.Counter(obs.PhaseSpill, "spill.slots", int64(s.Slots))
	tr.Counter(obs.PhaseSpill, "spill.remats", int64(s.Remats))
	tr.Counter(obs.PhaseSpill, "spill.split_loads", int64(s.SplitLoads))
}

// InsertCode rewrites f so that every register in spilled lives in
// memory: each definition is followed by a store to the range's
// slot, and each use reads a freshly reloaded temporary.
func InsertCode(f *ir.Func, spilled []ir.Reg) Stats {
	var st Stats
	slot := make(map[ir.Reg]int64, len(spilled))
	for _, r := range spilled {
		slot[r] = f.NewSlot()
		st.Slots++
	}

	for _, b := range f.Blocks {
		out := make([]ir.Instr, 0, len(b.Instrs))
		for i := range b.Instrs {
			in := b.Instrs[i]

			// Reload each distinct spilled register the instruction
			// uses, then rewrite the operands to the temporaries.
			var reloaded map[ir.Reg]ir.Reg
			reload := func(u ir.Reg) ir.Reg {
				if u == ir.NoReg {
					return u
				}
				s, isSpilled := slot[u]
				if !isSpilled {
					return u
				}
				if t, ok := reloaded[u]; ok {
					return t
				}
				t := f.NewSpillTemp(f.RegClass(u))
				out = append(out, ir.Instr{Op: ir.OpSpillLoad, Dst: t, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: s})
				st.Loads++
				if reloaded == nil {
					reloaded = make(map[ir.Reg]ir.Reg, 2)
				}
				reloaded[u] = t
				return t
			}
			in.A = reload(in.A)
			in.B = reload(in.B)
			in.C = reload(in.C)
			for j, a := range in.Args {
				in.Args[j] = reload(a)
			}

			// A spilled definition writes a fresh temporary and
			// stores it immediately.
			if d := in.Def(); d != ir.NoReg {
				if s, isSpilled := slot[d]; isSpilled {
					t := f.NewSpillTemp(f.RegClass(d))
					in.Dst = t
					out = append(out, in)
					out = append(out, ir.Instr{Op: ir.OpSpillStore, Dst: ir.NoReg, A: t, B: ir.NoReg, C: ir.NoReg, Imm: s})
					st.Stores++
					continue
				}
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	return st
}
