// Package obs is the allocator's observability layer: a structured
// event stream (phase spans, counters, spill decisions, color-reuse
// witnesses) emitted live as the Figure 4 cycle runs, instead of
// only in the post-hoc PassStats record.
//
// The design is pull-nothing, push-everything: the allocator pushes
// Events into a Sink the caller supplies; a nil Sink (the default)
// costs a single nil check per instrumentation site. Three sinks are
// provided: JSONSink (one JSON object per line, machine-readable
// traces), TextSink (human-readable log lines), and MetricsSink
// (in-process aggregation into counters and duration histograms).
//
// Event kinds map directly onto the paper's evaluation:
//
//   - phase spans reproduce Figure 7 (per-phase CPU time around
//     Build → Coalesce → Simplify → Color → Spill);
//   - spill-decision events carry the cost and the chosen metric
//     value behind Figures 5–6's spill counts and costs;
//   - color-reuse events witness §2.2's central claim: a node
//     removed as a spill candidate (degree >= k) still receives a
//     color because its neighbors reuse few distinct colors.
package obs

import (
	"fmt"
	"reflect"
	"time"
)

// Phase identifies one box of the paper's Figure 4 allocation cycle.
// Coalesce is nested inside Build (the figure's "build" box contains
// the coalescing inner loop), so its span begins after Build's and
// ends before it.
type Phase uint8

// The allocator phases, in cycle order.
const (
	PhaseBuild Phase = iota
	PhaseCoalesce
	PhaseSimplify
	PhaseColor
	PhaseSpill
	numPhases
)

var phaseNames = [...]string{"build", "coalesce", "simplify", "color", "spill"}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// NumPhases is the number of distinct phases.
const NumPhases = int(numPhases)

// Kind discriminates Event payloads.
type Kind uint8

// Event kinds.
const (
	// KindSpanBegin marks a phase starting; Phase is set.
	KindSpanBegin Kind = iota
	// KindSpanEnd marks a phase finishing; Phase and Dur are set.
	// Dur is the same duration recorded in the pass's PassStats
	// field, so traces reconcile exactly with the summary record.
	KindSpanEnd
	// KindCounter is a named measurement scoped to a phase; Name and
	// Value are set (e.g. "graph.edges" after build).
	KindCounter
	// KindSpillDecision records simplify getting stuck and choosing
	// a spill candidate: Node, Degree, Cost, and Metric (the chosen
	// figure-of-merit value, cost/degree under the default) are set.
	KindSpillDecision
	// KindColorReuse records the select phase coloring a node that
	// simplify had removed as a spill candidate — the optimistic
	// win over Chaitin. Node, Degree, InUseColors (distinct colors
	// among already-colored neighbors), and Color are set.
	KindColorReuse
)

var kindNames = [...]string{"span_begin", "span_end", "counter", "spill_decision", "color_reuse"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one observation. A single flat struct (rather than one
// type per kind) keeps emission allocation-free; only the fields
// documented on the Kind constants are meaningful for each kind.
type Event struct {
	Time  time.Time     // stamped at emission
	Kind  Kind          //
	Unit  string        // function being allocated ("" for standalone graphs)
	Pass  int           // 0-based trip around the Figure 4 cycle
	Phase Phase         // span and counter events
	Dur   time.Duration // KindSpanEnd
	Name  string        // KindCounter
	Value int64         // KindCounter

	Node        int32   // live-range / graph-node number
	Degree      int32   // node degree at decision time
	Cost        float64 // estimated spill cost (KindSpillDecision)
	Metric      float64 // chosen spill-metric value (KindSpillDecision)
	Color       int16   // assigned color (KindColorReuse)
	InUseColors int     // distinct neighbor colors (KindColorReuse)
}

// Sink receives events. Implementations used with whole-program
// allocation (regalloc.Assemble and AssembleContext allocate units
// on a worker pool) must be safe for concurrent use; all sinks in
// this package are.
type Sink interface {
	Emit(e Event)
}

// Tracer binds a Sink to one allocation's context (the unit name and
// current pass) and offers typed, nil-safe emit helpers: every method
// on a nil *Tracer is a no-op, so instrumentation sites cost one
// branch when observability is off.
type Tracer struct {
	sink Sink
	unit string
	pass int
	now  func() time.Time
}

// New returns a Tracer feeding sink, or nil when sink is nil (the
// zero-overhead path).
func New(sink Sink, unit string) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink, unit: unit, now: time.Now}
}

// NewWithClock is New with an injected clock, for tests (and replay
// tooling) that need deterministic event timestamps. A nil now means
// time.Now.
func NewWithClock(sink Sink, unit string, now func() time.Time) *Tracer {
	if sink == nil {
		return nil
	}
	if now == nil {
		now = time.Now
	}
	return &Tracer{sink: sink, unit: unit, now: now}
}

// Enabled reports whether events are being collected.
func (t *Tracer) Enabled() bool { return t != nil }

// SetPass sets the pass number stamped on subsequent events.
func (t *Tracer) SetPass(pass int) {
	if t == nil {
		return
	}
	t.pass = pass
}

func (t *Tracer) emit(e Event) {
	e.Time = t.now()
	e.Unit = t.unit
	e.Pass = t.pass
	t.sink.Emit(e)
}

// BeginPhase emits a span-begin for p.
func (t *Tracer) BeginPhase(p Phase) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindSpanBegin, Phase: p})
}

// EndPhase emits a span-end for p with the measured duration d.
func (t *Tracer) EndPhase(p Phase, d time.Duration) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindSpanEnd, Phase: p, Dur: d})
}

// Counter emits a named value scoped to phase p.
func (t *Tracer) Counter(p Phase, name string, v int64) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindCounter, Phase: p, Name: name, Value: v})
}

// SpillDecision records simplify choosing node as a spill candidate.
func (t *Tracer) SpillDecision(node, degree int32, cost, metric float64) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindSpillDecision, Phase: PhaseSimplify, Node: node, Degree: degree, Cost: cost, Metric: metric})
}

// ColorReuse records select coloring a spill candidate anyway.
func (t *Tracer) ColorReuse(node, degree int32, inUse int, color int16) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindColorReuse, Phase: PhaseColor, Node: node, Degree: degree, InUseColors: inUse, Color: color})
}

// multiSink fans events out to several sinks in order.
type multiSink []Sink

func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Multi combines sinks into one; nil entries are dropped — including
// typed nils like a nil *MetricsSink, the easy mistake when an
// optional sink variable keeps its concrete type — and the result is
// nil when nothing remains (preserving the fast path).
func Multi(sinks ...Sink) Sink {
	var out multiSink
	for _, s := range sinks {
		if s == nil {
			continue
		}
		if v := reflect.ValueOf(s); v.Kind() == reflect.Pointer && v.IsNil() {
			continue
		}
		out = append(out, s)
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
