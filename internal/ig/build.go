package ig

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"regalloc/internal/bitset"
	"regalloc/internal/dataflow"
	"regalloc/internal/ir"
	"regalloc/internal/obs"
)

// minParallelInstrs is the smallest function (by instruction count)
// worth sharding: below it the goroutine handoff and the merge
// bookkeeping cost more than the enumeration saves.
const minParallelInstrs = 256

// effectiveShards caps a worker request at the parallelism actually
// available: sharding beyond GOMAXPROCS only interleaves goroutines
// on the same cores, paying the buffering and merge overhead with no
// compensating wall-time win. The sharded and sequential paths build
// byte-identical graphs, so the cap never changes results.
func effectiveShards(workers, total int) int {
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	if workers > total {
		workers = total
	}
	return workers
}

// BuildWithLiveness constructs the interference graph of f reusing a
// precomputed liveness (which must describe f's current registers —
// any renumbering or rewriting since lv was computed invalidates it).
// This is the allocator's per-pass analysis-cache entry point: the
// Figure 4 cycle computes liveness once per pass and threads it
// through coalescing and graph construction instead of recomputing it
// at every build.
//
// For workers > 1 the edge enumeration is sharded across a worker
// pool; the shards are merged deterministically in enumeration-stream
// order, so the resulting graph — adjacency vectors included, and
// therefore simplify order, worklist tie-breaks, and final colors —
// is byte-identical to the sequential build. A nil tracer disables
// the build counters.
func BuildWithLiveness(f *ir.Func, lv *dataflow.Liveness, workers int, tr *obs.Tracer) *Graph {
	classes := make([]ir.Class, f.NumRegs())
	for i := range classes {
		classes[i] = f.RegClass(ir.Reg(i))
	}
	g := New(classes)
	total := 0
	for _, b := range f.Blocks {
		total += len(b.Instrs)
	}
	if shards := effectiveShards(workers, total); shards > 1 && total >= minParallelInstrs {
		buildSharded(g, f, lv, shards, total, tr)
	} else {
		buildSequential(g, f, lv, tr)
	}
	// Compile the CSR now, while the build phase owns the graph: the
	// first consumer query may come from inside a timed phase or a
	// concurrent pcolor worker.
	g.Finalize()
	return g
}

// piece is a contiguous instruction range [lo, hi) of one block. The
// sequential enumeration stream visits pieces in (block ascending,
// lo descending) order — descending because LiveAcross walks each
// block backward — and each piece's instructions from hi-1 down to
// lo. Sharding hands each worker a run of pieces that is contiguous
// in *ascending* instruction space; the merge re-serializes buffers
// in stream order, restoring the exact sequential edge order.
type piece struct {
	bi       int
	lo, hi   int
	liveAtHi *bitset.Set // live after instr hi-1; nil = block live-out
}

// enumeratePiece walks one piece's instructions backward and reports
// every candidate interference (def × live-after, minus the defined
// register itself and a move's source) to emit. It is the single
// definition of the enumeration both build paths and the membership
// matrix share.
func enumeratePiece(f *ir.Func, lv *dataflow.Liveness, p piece, emit func(d, l int32)) {
	b := f.Blocks[p.bi]
	lv.LiveAcrossRange(f, b, p.lo, p.hi, p.liveAtHi, func(_ int, in *ir.Instr, liveAfter *bitset.Set) {
		d := in.Def()
		if d == ir.NoReg {
			return
		}
		moveSrc := ir.NoReg
		if in.IsMove() {
			moveSrc = in.A
		}
		liveAfter.ForEach(func(l int) {
			if ir.Reg(l) != d && ir.Reg(l) != moveSrc {
				emit(int32(d), int32(l))
			}
		})
	})
}

// wholeBlock is the piece covering all of block bi.
func wholeBlock(f *ir.Func, bi int) piece {
	return piece{bi: bi, lo: 0, hi: len(f.Blocks[bi].Instrs)}
}

// buildSequential is the single-threaded enumeration: every candidate
// goes straight into the graph, which dedups via its bit-matrix/hash
// dual.
func buildSequential(g *Graph, f *ir.Func, lv *dataflow.Liveness, tr *obs.Tracer) {
	attempts := 0
	for bi := range f.Blocks {
		enumeratePiece(f, lv, wholeBlock(f, bi), func(d, l int32) {
			attempts++
			g.AddEdge(d, l)
		})
	}
	if tr.Enabled() {
		tr.Counter(obs.PhaseBuild, "ig.edge_inserts", int64(attempts))
	}
}

// splitPieces cuts f's instruction stream into shards spans of
// near-equal size, slicing inside blocks where a block straddles a
// boundary. (Generated code routinely concentrates >90% of a routine
// in one straight-line block, so block-granular sharding cannot
// balance.) Each shard's piece list is in ascending block order with
// at most one piece per block; the lists jointly cover every
// instruction exactly once. Boundary live sets for the intra-block
// cuts come from one cheap backward sweep per cut block.
func splitPieces(f *ir.Func, lv *dataflow.Liveness, shards, total int) [][]piece {
	out := make([][]piece, shards)
	bounds := make([]int, shards+1)
	for s := 0; s <= shards; s++ {
		bounds[s] = s * total / shards
	}
	base := 0
	s := 0
	for bi, b := range f.Blocks {
		n := len(b.Instrs)
		if n == 0 {
			continue
		}
		end := base + n
		for bounds[s+1] <= base {
			s++
		}
		for t := s; t < shards && bounds[t] < end; t++ {
			lo := bounds[t]
			if lo < base {
				lo = base
			}
			hi := bounds[t+1]
			if hi > end {
				hi = end
			}
			out[t] = append(out[t], piece{bi: bi, lo: lo - base, hi: hi - base})
		}
		base = end
	}
	// Seed the intra-block cuts: every piece that stops short of its
	// block's end needs the live set at its hi boundary. A block split
	// across k shards has k-1 cuts; one backward sweep serves them all.
	cut := make(map[int][]*piece)
	for s := range out {
		for i := range out[s] {
			p := &out[s][i]
			if p.hi < len(f.Blocks[p.bi].Instrs) {
				cut[p.bi] = append(cut[p.bi], p)
			}
		}
	}
	for bi, ps := range cut {
		sort.Slice(ps, func(i, j int) bool { return ps[i].hi < ps[j].hi })
		cuts := make([]int, len(ps))
		for i, p := range ps {
			cuts[i] = p.hi
		}
		sets := lv.LiveAtCuts(f, f.Blocks[bi], cuts)
		for i, p := range ps {
			p.liveAtHi = sets[i]
		}
	}
	return out
}

// edgePair is one undirected candidate edge in shard order.
type edgePair struct{ a, b int32 }

// edgeSeen is the per-shard local dedup structure, mirroring the
// graph's own dual representation: a triangular bit matrix up to
// bitMatrixLimit nodes, a flat open-addressing edge set beyond it.
type edgeSeen struct {
	n    int
	bits []uint64
	set  edgeSet
}

func newEdgeSeen(n int) *edgeSeen {
	s := &edgeSeen{n: n}
	if n <= bitMatrixLimit {
		s.bits = make([]uint64, (n*(n-1)/2+63)/64)
	} else {
		s.set.init(0)
	}
	return s
}

// insert records the unordered pair (a, b) and reports whether it was
// new.
func (s *edgeSeen) insert(a, b int32) bool {
	if a > b {
		a, b = b, a
	}
	if s.bits != nil {
		i := triIndex(a, b)
		if s.bits[i/64]&(1<<uint(i%64)) != 0 {
			return false
		}
		s.bits[i/64] |= 1 << uint(i%64)
		return true
	}
	return s.set.insert(edgeKey(a, b))
}

// buildSharded enumerates the pieces concurrently into per-piece
// locally-deduped buffers, then merges the buffers in enumeration-
// stream order. A shard's pieces are ascending by block with one
// piece per block, so a shard-wide dedup still keeps exactly the
// shard's stream-first occurrence of each edge; the stream-order
// merge then dedups globally, so first occurrence wins exactly as in
// the sequential build's AddEdge stream and the adjacency vectors
// come out byte-identical to buildSequential's.
func buildSharded(g *Graph, f *ir.Func, lv *dataflow.Liveness, shards, total int, tr *obs.Tracer) {
	t0 := time.Now()
	work := splitPieces(f, lv, shards, total)
	type pieceBuf struct {
		p     piece
		edges []edgePair
	}
	bufs := make([][]pieceBuf, shards)
	attemptsBy := make([]int, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			seen := newEdgeSeen(g.n)
			pb := make([]pieceBuf, len(work[s]))
			att := 0
			for i := range work[s] {
				p := work[s][i]
				pb[i].p = p
				edges := pb[i].edges
				enumeratePiece(f, lv, p, func(d, l int32) {
					att++
					// Filter what the graph would reject (cross-class
					// pairs) before buffering, and dedup locally:
					// duplicates within a shard would lose the global
					// first-occurrence race anyway.
					if g.class[d] != g.class[l] {
						return
					}
					if seen.insert(d, l) {
						edges = append(edges, edgePair{d, l})
					}
				})
				pb[i].edges = edges
			}
			attemptsBy[s] = att
			bufs[s] = pb
		}(s)
	}
	wg.Wait()
	shardDur := time.Since(t0)

	t0 = time.Now()
	var all []pieceBuf
	for s := range bufs {
		all = append(all, bufs[s]...)
	}
	// Stream order: blocks ascending; within a split block the walk
	// is backward, so higher-lo pieces come first.
	sort.Slice(all, func(i, j int) bool {
		if all[i].p.bi != all[j].p.bi {
			return all[i].p.bi < all[j].p.bi
		}
		return all[i].p.lo > all[j].p.lo
	})
	// Pre-size the edge log from the buffers' counts (an upper bound
	// on final edges — cross-shard duplicates inflate it slightly) so
	// the merge's appends never reallocate, then replay the buffers in
	// stream order through AddEdge; the CSR compile in Finalize reads
	// the log back out in exactly that order.
	attempts, buffered := 0, 0
	for s := range attemptsBy {
		attempts += attemptsBy[s]
	}
	for _, pb := range all {
		buffered += len(pb.edges)
	}
	if cap(g.ea) < buffered {
		g.ea = make([]int32, 0, buffered)
		g.eb = make([]int32, 0, buffered)
	}
	for _, pb := range all {
		for _, e := range pb.edges {
			g.AddEdge(e.a, e.b)
		}
	}
	mergeDur := time.Since(t0)

	if tr.Enabled() {
		tr.Counter(obs.PhaseBuild, "ig.edge_inserts", int64(attempts))
		tr.Counter(obs.PhaseBuild, "ig.par.shards", int64(shards))
		tr.Counter(obs.PhaseBuild, "ig.par.buffered_edges", int64(buffered))
		tr.Counter(obs.PhaseBuild, "ig.par.shard_ns", shardDur.Nanoseconds())
		tr.Counter(obs.PhaseBuild, "ig.par.merge_ns", mergeDur.Nanoseconds())
	}
}

// Matrix is the membership-only face of the interference relation:
// the dual representation's bit matrix (or hash set, past
// bitMatrixLimit) without the adjacency vectors. The aggressive
// coalescing rounds between the first build and the post-coalesce
// rebuild only ever ask "do these two ranges interfere?", so they use
// a Matrix instead of a full Graph — skipping the adjacency appends
// that dominate build time, and freeing the parallel build from any
// ordering obligation: setting bits is commutative, so shards write
// one shared matrix directly and there is no merge step at all.
type Matrix struct {
	n     int
	class []ir.Class
	bits  []uint64
	edges map[uint64]struct{}
}

// Interfere reports whether a and b interfere, exactly as the full
// graph built from the same function and liveness would.
func (m *Matrix) Interfere(a, b int32) bool {
	if a == b {
		return false
	}
	if m.bits != nil {
		if a > b {
			a, b = b, a
		}
		i := triIndex(a, b)
		return m.bits[i/64]&(1<<uint(i%64)) != 0
	}
	_, ok := m.edges[edgeKey(a, b)]
	return ok
}

// BuildMatrix constructs the membership-only interference relation of
// f from a precomputed liveness. For workers > 1 (and a function
// large enough, with few enough registers for the bit matrix) the
// enumeration is sharded with the same instruction-weighted cuts as
// the full build; shards publish bits with atomic or, which commutes,
// so the result is identical for any worker count.
func BuildMatrix(f *ir.Func, lv *dataflow.Liveness, workers int, tr *obs.Tracer) *Matrix {
	m := &Matrix{n: f.NumRegs()}
	m.class = make([]ir.Class, m.n)
	for i := range m.class {
		m.class[i] = f.RegClass(ir.Reg(i))
	}
	total := 0
	for _, b := range f.Blocks {
		total += len(b.Instrs)
	}
	if m.n <= bitMatrixLimit {
		m.bits = make([]uint64, (m.n*(m.n-1)/2+63)/64)
		if shards := effectiveShards(workers, total); shards > 1 && total >= minParallelInstrs {
			buildMatrixSharded(m, f, lv, shards, total, tr)
			return m
		}
	} else {
		m.edges = make(map[uint64]struct{})
	}
	attempts := 0
	for bi := range f.Blocks {
		enumeratePiece(f, lv, wholeBlock(f, bi), func(d, l int32) {
			attempts++
			if m.class[d] != m.class[l] {
				return
			}
			if m.bits != nil {
				i := triIndex2(d, l)
				m.bits[i/64] |= 1 << uint(i%64)
			} else {
				m.edges[edgeKey(d, l)] = struct{}{}
			}
		})
	}
	if tr.Enabled() {
		tr.Counter(obs.PhaseCoalesce, "ig.matrix_inserts", int64(attempts))
	}
	return m
}

// triIndex2 is triIndex for a possibly-unordered pair.
func triIndex2(a, b int32) int {
	if a > b {
		a, b = b, a
	}
	return triIndex(a, b)
}

// buildMatrixSharded fills m.bits from all shards at once. The
// pre-check load keeps the common duplicate case off the contended
// atomic path; both the load and the or are atomic so the build is
// clean under the race detector.
func buildMatrixSharded(m *Matrix, f *ir.Func, lv *dataflow.Liveness, shards, total int, tr *obs.Tracer) {
	work := splitPieces(f, lv, shards, total)
	attemptsBy := make([]int, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			att := 0
			for _, p := range work[s] {
				enumeratePiece(f, lv, p, func(d, l int32) {
					att++
					if m.class[d] != m.class[l] {
						return
					}
					i := triIndex2(d, l)
					w, mask := i/64, uint64(1)<<uint(i%64)
					// CAS loop standing in for an atomic or (1.22
					// toolchains lack atomic.OrUint64). The load
					// doubles as the duplicate check, keeping the
					// common already-set case off the contended path.
					for {
						old := atomic.LoadUint64(&m.bits[w])
						if old&mask != 0 {
							break
						}
						if atomic.CompareAndSwapUint64(&m.bits[w], old, old|mask) {
							break
						}
					}
				})
			}
			attemptsBy[s] = att
		}(s)
	}
	wg.Wait()
	if tr.Enabled() {
		attempts := 0
		for _, a := range attemptsBy {
			attempts += a
		}
		tr.Counter(obs.PhaseCoalesce, "ig.matrix_inserts", int64(attempts))
	}
}
