package portfolio_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"regalloc/internal/alloc"
	"regalloc/internal/ir"
	"regalloc/internal/irgen"
	"regalloc/internal/obs"
	"regalloc/internal/parser"
	"regalloc/internal/portfolio"
	"regalloc/internal/sem"
)

// pressureSrc keeps twelve floats live across a loop: under a small
// float budget every heuristic spills, and different strategies spill
// differently — which is what gives the race something to decide.
const pressureSrc = `
      SUBROUTINE HOT(A,B,N)
      REAL A(*),B(*)
      REAL T1,T2,T3,T4,T5,T6,T7,T8,T9,TA,TB,TC
      INTEGER I,N
      T1 = A(1)
      T2 = A(2)
      T3 = A(3)
      T4 = A(4)
      T5 = A(5)
      T6 = A(6)
      T7 = A(7)
      T8 = A(8)
      T9 = A(9)
      TA = A(10)
      TB = A(11)
      TC = A(12)
      DO I = 1,N
         B(I) = T1 + T2*T3 + T4*T5 + T6*T7 + T8*T9 + TA*TB + TC
      ENDDO
      B(1) = T1 + T2 + T3 + T4 + T5 + T6 + T7 + T8 + T9 + TA + TB + TC
      RETURN
      END
`

func compileUnit(t *testing.T, src, name string) *ir.Func {
	t.Helper()
	astProg, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(astProg)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	prog, err := irgen.Gen(astProg, info, irgen.DefaultStaticStart)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	f := prog.Func(name)
	if f == nil {
		t.Fatalf("no unit %s", name)
	}
	return f
}

// tightOptions squeezes the float budget to 12: every strategy still
// finishes (smaller budgets make the cost-blind ones hit the
// spill-temporary hard error), but they finish with different spill
// bills — briggs spills 2 here, mb 6, pcolor 13 — so selection has
// real work to do.
func tightOptions() alloc.Options {
	opt := alloc.DefaultOptions()
	opt.KFloat = 12
	return opt
}

// recordSink collects events and refuses any Emit after the race has
// returned — the no-leak contract of Race.
type recordSink struct {
	mu     sync.Mutex
	closed bool
	events []obs.Event
	late   int
}

func (r *recordSink) Emit(e obs.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		r.late++
		return
	}
	r.events = append(r.events, e)
}

func (r *recordSink) close() (events []obs.Event, late int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	return r.events, r.late
}

func TestRaceWinnerNotWorseThanAnyCandidate(t *testing.T) {
	f := compileUnit(t, pressureSrc, "HOT")
	cands := portfolio.Default(tightOptions(), 1, 7)
	pr, err := portfolio.Race(context.Background(), f, cands, portfolio.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Res == nil || pr.Winner < 0 || pr.Winner >= len(pr.Outcomes) {
		t.Fatalf("bad winner: %+v", pr)
	}
	win := pr.Outcomes[pr.Winner]
	if win.Status != portfolio.Finished || win.Result == nil {
		t.Fatalf("winner not a finisher: %+v", win)
	}
	// With no budget and no cutoff every candidate finishes, and the
	// winner must be at least as cheap as each of them.
	for _, o := range pr.Outcomes {
		if o.Status != portfolio.Finished {
			t.Fatalf("candidate %s: status %v (err %v)", o.Name, o.Status, o.Err)
		}
		if o.SpillCostMilli < win.SpillCostMilli {
			t.Errorf("candidate %s cost %d beats winner %s cost %d",
				o.Name, o.SpillCostMilli, win.Name, win.SpillCostMilli)
		}
	}
	started, finished, cancelled, errored := pr.Counts()
	if started != len(cands) || finished != len(cands) || cancelled != 0 || errored != 0 {
		t.Fatalf("counts: started=%d finished=%d cancelled=%d errored=%d", started, finished, cancelled, errored)
	}
}

func TestRaceDeterministicWinner(t *testing.T) {
	f := compileUnit(t, pressureSrc, "HOT")
	cands := portfolio.Default(tightOptions(), 1, 7, 42)
	var winner string
	var cost int64
	for trial := 0; trial < 4; trial++ {
		pr, err := portfolio.Race(context.Background(), f, cands, portfolio.Config{Workers: 1 + trial%3})
		if err != nil {
			t.Fatal(err)
		}
		name := pr.Outcomes[pr.Winner].Name
		if trial == 0 {
			winner, cost = name, pr.Outcomes[pr.Winner].SpillCostMilli
			continue
		}
		if name != winner || pr.Outcomes[pr.Winner].SpillCostMilli != cost {
			t.Fatalf("trial %d: winner %s/%d, want %s/%d", trial, name, pr.Outcomes[pr.Winner].SpillCostMilli, winner, cost)
		}
	}
}

func TestRaceEventAttribution(t *testing.T) {
	f := compileUnit(t, pressureSrc, "HOT")
	cands := portfolio.Default(tightOptions(), 1)
	sink := &recordSink{}
	pr, err := portfolio.Race(context.Background(), f, cands, portfolio.Config{Observer: sink})
	if err != nil {
		t.Fatal(err)
	}
	events, late := sink.close()
	if late != 0 {
		t.Fatalf("%d events emitted after Race returned", late)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	// Every candidate stream is contiguous (flushed in index order),
	// attributed to HOT#name, and the race counters ride on the plain
	// unit name.
	perCand := map[string]int{}
	counters := map[string]int64{}
	lastIdx := -1
	for _, e := range events {
		if e.Unit == "HOT" {
			if e.Kind == obs.KindCounter && strings.HasPrefix(e.Name, "portfolio.") {
				counters[e.Name] = e.Value
			}
			continue
		}
		name, ok := strings.CutPrefix(e.Unit, "HOT#")
		if !ok {
			t.Fatalf("event attributed to %q", e.Unit)
		}
		perCand[name]++
		idx := -1
		for i, c := range cands {
			if c.Name == name {
				idx = i
			}
		}
		if idx < 0 {
			t.Fatalf("event for unknown candidate %q", name)
		}
		if idx < lastIdx {
			t.Fatalf("candidate %q events not flushed in index order", name)
		}
		lastIdx = idx
	}
	for _, c := range cands {
		if perCand[c.Name] == 0 {
			t.Errorf("candidate %s emitted no events", c.Name)
		}
	}
	if counters["portfolio.candidates"] != int64(len(cands)) {
		t.Errorf("portfolio.candidates = %d, want %d", counters["portfolio.candidates"], len(cands))
	}
	if counters["portfolio.winner_index"] != int64(pr.Winner) {
		t.Errorf("portfolio.winner_index = %d, want %d", counters["portfolio.winner_index"], pr.Winner)
	}
	if counters["portfolio.finished"] != int64(len(cands)) {
		t.Errorf("portfolio.finished = %d, want %d", counters["portfolio.finished"], len(cands))
	}
}

func TestFirstGoodCancelsStragglers(t *testing.T) {
	f := compileUnit(t, pressureSrc, "HOT")
	// A generous budget: every strategy colors without spilling, so
	// the very first finisher triggers the cutoff. Workers=1
	// serializes starts, making the cancellation deterministic.
	opt := alloc.DefaultOptions()
	opt.KFloat = 16
	cands := portfolio.Default(opt, 1, 7, 42)
	pr, err := portfolio.Race(context.Background(), f, cands, portfolio.Config{
		Mode: portfolio.FirstGood, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	win := pr.Outcomes[pr.Winner]
	if win.Spills != 0 {
		t.Fatalf("first-good winner spilled %d", win.Spills)
	}
	_, finished, cancelled, _ := pr.Counts()
	if finished != 1 || cancelled != len(cands)-1 {
		t.Fatalf("finished=%d cancelled=%d, want 1 and %d", finished, cancelled, len(cands)-1)
	}
	if pr.Mode != portfolio.FirstGood {
		t.Fatalf("mode %v", pr.Mode)
	}
}

func TestRaceCancelledContext(t *testing.T) {
	f := compileUnit(t, pressureSrc, "HOT")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := portfolio.Race(ctx, f, portfolio.Default(tightOptions()), portfolio.Config{})
	if !errors.Is(err, portfolio.ErrNoWinner) {
		t.Fatalf("err = %v, want ErrNoWinner", err)
	}
}

func TestRaceValidatesCandidates(t *testing.T) {
	f := compileUnit(t, pressureSrc, "HOT")
	bad := portfolio.Default(tightOptions())
	bad[2].Opt.KInt = 0
	_, err := portfolio.Race(context.Background(), f, bad, portfolio.Config{})
	if !errors.Is(err, alloc.ErrBadK) {
		t.Fatalf("err = %v, want ErrBadK", err)
	}
	if _, err := portfolio.Race(context.Background(), f, nil, portfolio.Config{}); !errors.Is(err, portfolio.ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
}

func TestRaceAdmissionHooks(t *testing.T) {
	f := compileUnit(t, pressureSrc, "HOT")
	cands := portfolio.Default(tightOptions(), 1)
	var mu sync.Mutex
	inFlight, peak, acquired, released := 0, 0, 0, 0
	cfg := portfolio.Config{
		Workers: 2,
		Acquire: func(ctx context.Context) error {
			mu.Lock()
			defer mu.Unlock()
			inFlight++
			acquired++
			if inFlight > peak {
				peak = inFlight
			}
			return nil
		},
		Release: func() {
			mu.Lock()
			defer mu.Unlock()
			inFlight--
			released++
		},
	}
	if _, err := portfolio.Race(context.Background(), f, cands, cfg); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if acquired != len(cands) || released != acquired {
		t.Fatalf("acquired=%d released=%d, want %d each", acquired, released, len(cands))
	}
	if inFlight != 0 {
		t.Fatalf("inFlight=%d after race", inFlight)
	}
	if peak > 2 {
		t.Fatalf("peak concurrency %d exceeds Workers=2", peak)
	}
}

func TestRaceAdmissionRefused(t *testing.T) {
	f := compileUnit(t, pressureSrc, "HOT")
	cands := portfolio.Default(tightOptions())
	refused := errors.New("no slots")
	cfg := portfolio.Config{
		Acquire: func(ctx context.Context) error { return refused },
		Release: func() { t.Error("Release called for a refused candidate") },
	}
	_, err := portfolio.Race(context.Background(), f, cands, cfg)
	if !errors.Is(err, portfolio.ErrNoWinner) {
		t.Fatalf("err = %v, want ErrNoWinner", err)
	}
}

// TestRaceNoGoroutineLeak is the dependency-free goleak: run several
// races (including budgeted and cancelled ones), then require the
// goroutine count to settle back to the baseline.
func TestRaceNoGoroutineLeak(t *testing.T) {
	f := compileUnit(t, pressureSrc, "HOT")
	cands := portfolio.Default(tightOptions(), 1, 7, 42)
	base := runtime.NumGoroutine()
	for trial := 0; trial < 3; trial++ {
		if _, err := portfolio.Race(context.Background(), f, cands, portfolio.Config{Observer: &recordSink{}}); err != nil {
			t.Fatal(err)
		}
		// A budget so tight most candidates never start.
		pr, err := portfolio.Race(context.Background(), f, cands, portfolio.Config{Budget: time.Nanosecond})
		if err == nil {
			if _, _, cancelled, _ := pr.Counts(); cancelled == 0 {
				t.Log("nanosecond budget admitted every candidate (slow machine?)")
			}
		} else if !errors.Is(err, portfolio.ErrNoWinner) {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := portfolio.Race(ctx, f, cands, portfolio.Config{}); !errors.Is(err, portfolio.ErrNoWinner) {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines leaked: %d -> %d\n%s", base, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]portfolio.Mode{
		"race": portfolio.RaceToBest, "race-to-best": portfolio.RaceToBest, "best": portfolio.RaceToBest,
		"first-good": portfolio.FirstGood, "firstgood": portfolio.FirstGood, "first": portfolio.FirstGood,
	} {
		m, err := portfolio.ParseMode(s)
		if err != nil || m != want {
			t.Errorf("ParseMode(%q) = %v, %v", s, m, err)
		}
	}
	if _, err := portfolio.ParseMode("fastest"); err == nil {
		t.Error("ParseMode accepted garbage")
	}
}
