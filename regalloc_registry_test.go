package regalloc_test

import (
	"context"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"regalloc"
)

// TestRegistryReconcilesWithPassStats hammers one Registry from
// GOMAXPROCS goroutines running real allocations and asserts every
// registry total reconciles exactly with the per-run PassStats —
// the contract that makes /metrics trustworthy under load. Run with
// -race in CI.
func TestRegistryReconcilesWithPassStats(t *testing.T) {
	prog, err := regalloc.Compile(pressure)
	if err != nil {
		t.Fatal(err)
	}
	reg := regalloc.NewRegistry()
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 25

	// Each goroutine keeps its own results; the shared registry is
	// only ever touched through Record.
	perG := make([][]*regalloc.Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				opt := regalloc.DefaultOptions()
				opt.KInt = 4 + (w+i)%4 // force spills on some runs
				res, err := prog.Allocate("PRESS", opt)
				if err != nil {
					t.Error(err)
					return
				}
				perG[w] = append(perG[w], res)
				reg.Record(regalloc.Summarize("PRESS", res))
			}
		}(w)
	}
	wg.Wait()

	var wantRuns, wantPasses, wantSpills, wantCostMilli, wantMoves int64
	var wantPhaseNS [4]int64
	for _, results := range perG {
		for _, res := range results {
			wantRuns++
			wantPasses += int64(len(res.Passes))
			var cost float64
			for _, p := range res.Passes {
				wantSpills += int64(p.Spilled)
				cost += p.SpillCost
				wantMoves += int64(p.CoalescedMoves)
			}
			wantCostMilli += int64(math.Round(cost * 1000))
			wantPhaseNS[0] += sumDur(res, func(p regalloc.PassStats) time.Duration { return p.Build })
			wantPhaseNS[1] += sumDur(res, func(p regalloc.PassStats) time.Duration { return p.Simplify })
			wantPhaseNS[2] += sumDur(res, func(p regalloc.PassStats) time.Duration { return p.Color })
			wantPhaseNS[3] += sumDur(res, func(p regalloc.PassStats) time.Duration { return p.Spill })
		}
	}

	snap := reg.Snapshot()
	if snap.Runs != wantRuns || snap.Passes != wantPasses {
		t.Fatalf("runs/passes = %d/%d, want %d/%d", snap.Runs, snap.Passes, wantRuns, wantPasses)
	}
	if snap.Spills != wantSpills {
		t.Fatalf("spills = %d, want %d", snap.Spills, wantSpills)
	}
	if snap.SpillCostMilli != wantCostMilli {
		t.Fatalf("spill cost milli = %d, want %d (must reconcile exactly)", snap.SpillCostMilli, wantCostMilli)
	}
	if snap.CoalescedMoves != wantMoves {
		t.Fatalf("coalesced moves = %d, want %d", snap.CoalescedMoves, wantMoves)
	}
	if snap.UnitRuns["PRESS"] != wantRuns {
		t.Fatalf("unit runs = %d, want %d", snap.UnitRuns["PRESS"], wantRuns)
	}
	// Histogram sums are the same integers the PassStats carry.
	phaseIdx := map[string]int{"build": 0, "simplify": 1, "color": 2, "spill": 3}
	for name, i := range phaseIdx {
		h := snap.Phase[phaseForName(t, name)]
		if h.SumNS != wantPhaseNS[i] {
			t.Errorf("%s histogram sum = %dns, want %dns", name, h.SumNS, wantPhaseNS[i])
		}
	}
	if snap.Spills == 0 {
		t.Fatal("test never spilled; lower KInt so the reconciliation is exercised")
	}
}

func sumDur(res *regalloc.Result, f func(regalloc.PassStats) time.Duration) int64 {
	var n int64
	for _, p := range res.Passes {
		n += f(p).Nanoseconds()
	}
	return n
}

// phaseForName maps a phase name to its index in Snapshot.Phase
// without importing internal/obs from an external test.
func phaseForName(t *testing.T, name string) int {
	t.Helper()
	for _, p := range []struct {
		name string
		idx  int
	}{{"build", 0}, {"coalesce", 1}, {"simplify", 2}, {"color", 3}, {"spill", 4}} {
		if p.name == name {
			return p.idx
		}
	}
	t.Fatalf("unknown phase %q", name)
	return -1
}

// TestAllocateAllContext exercises the shared worker pool without
// lowering: every unit of a multi-routine program is allocated, the
// results match per-unit Allocate, and cancellation is honored.
func TestAllocateAllContext(t *testing.T) {
	prog, err := regalloc.Compile(pressure + `
      INTEGER FUNCTION TWICE(N)
      INTEGER N
      TWICE = N + N
      END
`)
	if err != nil {
		t.Fatal(err)
	}
	opt := regalloc.DefaultOptions()
	opt.KInt = 4
	results, err := prog.AllocateAllContext(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for _, name := range []string{"PRESS", "TWICE"} {
		want, err := prog.Allocate(name, opt)
		if err != nil {
			t.Fatal(err)
		}
		got := results[name]
		if got == nil {
			t.Fatalf("no result for %s", name)
		}
		if got.TotalSpilled() != want.TotalSpilled() || len(got.Passes) != len(want.Passes) {
			t.Errorf("%s: pooled run diverges from direct Allocate: spills %d/%d passes %d/%d",
				name, got.TotalSpilled(), want.TotalSpilled(), len(got.Passes), len(want.Passes))
		}
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := prog.AllocateAllContext(cancelled, opt); err == nil {
		t.Fatal("cancelled context did not fail")
	}

	opt.KInt = 0
	if _, err := prog.AllocateAllContext(context.Background(), opt); err == nil {
		t.Fatal("invalid options did not fail")
	}
}
