package regalloc_test

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"regalloc"
)

// TestSSARegistryReconcilesWithPassStats is the SSA-path mirror of
// TestRegistryReconcilesWithPassStats: the chordal allocator reports
// through the same PassStats shape (pre-spill rounds as passes, the
// final pass carrying build/color time), so its runs must reconcile
// exactly with the registry too — including the color histogram,
// which for SSA aggregates coloring plus out-of-SSA lowering. Run
// with -race in CI.
func TestSSARegistryReconcilesWithPassStats(t *testing.T) {
	prog, err := regalloc.Compile(pressure)
	if err != nil {
		t.Fatal(err)
	}
	reg := regalloc.NewRegistry()
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 25

	perG := make([][]*regalloc.Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				opt := regalloc.DefaultOptions()
				opt.Heuristic = regalloc.SSA
				opt.KInt = 4 + (w+i)%4 // force pre-spill rounds on some runs
				res, err := prog.Allocate("PRESS", opt)
				if err != nil {
					t.Error(err)
					return
				}
				perG[w] = append(perG[w], res)
				reg.Record(regalloc.Summarize("PRESS", res))
			}
		}(w)
	}
	wg.Wait()

	var wantRuns, wantPasses, wantSpills, wantCostMilli int64
	var wantPhaseNS [4]int64
	for _, results := range perG {
		for _, res := range results {
			wantRuns++
			wantPasses += int64(len(res.Passes))
			var cost float64
			for _, p := range res.Passes {
				wantSpills += int64(p.Spilled)
				cost += p.SpillCost
			}
			wantCostMilli += int64(math.Round(cost * 1000))
			wantPhaseNS[0] += sumDur(res, func(p regalloc.PassStats) time.Duration { return p.Build })
			wantPhaseNS[1] += sumDur(res, func(p regalloc.PassStats) time.Duration { return p.Simplify })
			wantPhaseNS[2] += sumDur(res, func(p regalloc.PassStats) time.Duration { return p.Color })
			wantPhaseNS[3] += sumDur(res, func(p regalloc.PassStats) time.Duration { return p.Spill })
		}
	}

	snap := reg.Snapshot()
	if snap.Runs != wantRuns || snap.Passes != wantPasses {
		t.Fatalf("runs/passes = %d/%d, want %d/%d", snap.Runs, snap.Passes, wantRuns, wantPasses)
	}
	if snap.Spills != wantSpills {
		t.Fatalf("spills = %d, want %d", snap.Spills, wantSpills)
	}
	if snap.SpillCostMilli != wantCostMilli {
		t.Fatalf("spill cost milli = %d, want %d (must reconcile exactly)", snap.SpillCostMilli, wantCostMilli)
	}
	if snap.UnitRuns["PRESS"] != wantRuns {
		t.Fatalf("unit runs = %d, want %d", snap.UnitRuns["PRESS"], wantRuns)
	}
	phaseIdx := map[string]int{"build": 0, "simplify": 1, "color": 2, "spill": 3}
	for name, i := range phaseIdx {
		h := snap.Phase[phaseForName(t, name)]
		if h.SumNS != wantPhaseNS[i] {
			t.Errorf("%s histogram sum = %dns, want %dns", name, h.SumNS, wantPhaseNS[i])
		}
	}
	if snap.Spills == 0 {
		t.Fatal("test never spilled; lower KInt so the reconciliation is exercised")
	}
}
