// Package coalesce implements Chaitin-style aggressive copy
// coalescing: any register-to-register move whose source and
// destination do not interfere is eliminated by merging the two live
// ranges, and the build/coalesce step repeats until no move can be
// removed (the inner loop of the paper's Figure 4 "build" box).
package coalesce

import (
	"regalloc/internal/ig"
	"regalloc/internal/ir"
	"regalloc/internal/obs"
)

// Run coalesces moves in f until fixpoint, rewriting registers and
// deleting the eliminated copies. It returns the number of moves
// removed and the interference graph of the final program, which the
// caller may reuse.
//
// Moves involving a spill temporary are never coalesced: merging a
// reload temporary back into a long-lived range would undo the spill
// and could keep the allocator from converging.
func Run(f *ir.Func) (int, *ig.Graph) {
	return run(f, nil, nil)
}

// RunTraced is Run with an observability tracer: each build/coalesce
// round emits counters for the moves examined and merged, which is
// finer-grained than the total Run returns (the fixpoint loop's
// convergence is visible round by round). A nil tracer makes it
// identical to Run.
func RunTraced(f *ir.Func, tr *obs.Tracer) (int, *ig.Graph) {
	return run(f, nil, tr)
}

// RunConservativeTraced is RunConservative with an observability
// tracer; see RunTraced.
func RunConservativeTraced(f *ir.Func, k func(ir.Class) int, tr *obs.Tracer) (int, *ig.Graph) {
	return run(f, k, tr)
}

// RunConservative coalesces with the Briggs conservative test that
// the same authors published five years after this paper
// ("Improvements to Graph Coloring Register Allocation", TOPLAS
// 1994): a move is merged only when the combined node would have
// fewer than k neighbors of significant degree (degree >= k for
// their class), which guarantees the merge can never turn a
// colorable graph into a spilling one. Included as an ablation — the
// paper's own allocator coalesces aggressively.
func RunConservative(f *ir.Func, k func(ir.Class) int) (int, *ig.Graph) {
	return run(f, k, nil)
}

func run(f *ir.Func, conservativeK func(ir.Class) int, tr *obs.Tracer) (int, *ig.Graph) {
	total := 0
	rounds := 0
	for {
		g := ig.Build(f)
		examined := 0
		parent := make([]ir.Reg, f.NumRegs())
		for i := range parent {
			parent[i] = ir.Reg(i)
		}
		var find func(ir.Reg) ir.Reg
		find = func(x ir.Reg) ir.Reg {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}

		merged := 0
		touched := make([]bool, f.NumRegs())
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if !in.IsMove() || in.A == ir.NoReg {
					continue
				}
				dst, src := in.Dst, in.A
				if dst == src {
					continue
				}
				examined++
				// Only coalesce pairs untouched in this round: the
				// static graph g cannot answer interference queries
				// about a range merged moments ago (its true
				// neighbor set is already larger than g records).
				// Chained copies are picked up by the next
				// build/coalesce round.
				if touched[dst] || touched[src] {
					continue
				}
				if f.RegClass(dst) != f.RegClass(src) {
					continue
				}
				if f.RegFlags(dst)&ir.FlagSpillTemp != 0 || f.RegFlags(src)&ir.FlagSpillTemp != 0 {
					continue
				}
				if g.Interfere(int32(dst), int32(src)) {
					continue
				}
				if conservativeK != nil && !briggsTest(g, f, dst, src, conservativeK) {
					continue
				}
				touched[dst] = true
				touched[src] = true
				// Merge into the smaller id for determinism.
				if src < dst {
					dst, src = src, dst
				}
				parent[src] = dst
				merged++
			}
		}
		if tr.Enabled() {
			tr.Counter(obs.PhaseCoalesce, "coalesce.examined", int64(examined))
			tr.Counter(obs.PhaseCoalesce, "coalesce.merged", int64(merged))
		}
		rounds++
		if merged == 0 {
			if tr.Enabled() {
				tr.Counter(obs.PhaseCoalesce, "coalesce.rounds", int64(rounds))
			}
			return total, g
		}
		total += merged
		rewrite(f, find)
	}
}

// briggsTest is the conservative-coalescing criterion: merging dst
// and src is safe when the combined node has fewer than k neighbors
// of significant degree. A neighbor adjacent to both ends loses one
// edge in the merge, so its effective degree drops by one.
func briggsTest(g *ig.Graph, f *ir.Func, dst, src ir.Reg, kOf func(ir.Class) int) bool {
	k := kOf(f.RegClass(dst))
	deg := make(map[int32]int)
	for _, nb := range g.Neighbors(int32(dst)) {
		deg[nb] = g.Degree(nb)
	}
	for _, nb := range g.Neighbors(int32(src)) {
		if _, common := deg[nb]; common {
			deg[nb] = g.Degree(nb) - 1
		} else {
			deg[nb] = g.Degree(nb)
		}
	}
	delete(deg, int32(dst))
	delete(deg, int32(src))
	significant := 0
	for _, d := range deg {
		if d >= k {
			significant++
		}
	}
	return significant < k
}

// rewrite renames every operand to its representative and deletes
// moves that became self-copies.
func rewrite(f *ir.Func, find func(ir.Reg) ir.Reg) {
	ren := func(r ir.Reg) ir.Reg {
		if r == ir.NoReg {
			return ir.NoReg
		}
		return find(r)
	}
	for _, b := range f.Blocks {
		out := b.Instrs[:0]
		for i := range b.Instrs {
			in := b.Instrs[i]
			in.Dst = ren(in.Dst)
			in.A = ren(in.A)
			in.B = ren(in.B)
			in.C = ren(in.C)
			for j, a := range in.Args {
				in.Args[j] = ren(a)
			}
			if in.IsMove() && in.Dst == in.A {
				continue // coalesced copy disappears
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	for i, p := range f.Params {
		f.Params[i] = ren(p)
	}
}
