package regalloc_test

import (
	"fmt"
	"testing"

	"regalloc"
	"regalloc/internal/fuzzgen"
	"regalloc/internal/ir"
	"regalloc/internal/workloads"
)

// countMoves returns the number of register-copy instructions left in
// an allocated unit.
func countMoves(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].IsMove() {
				n++
			}
		}
	}
	return n
}

// TestIRCNeverWorseThanBriggs is the differential oracle of iterated
// register coalescing, over the full Figure 5 corpus plus 100
// generated CFGs: against Briggs with conservative coalescing (the
// strongest pre-pass configuration), IRC must
//
//   - never spill at higher total estimated cost on any unit, and
//   - eliminate a strictly larger share of copies: on every
//     move-heavy unit (>= 4 copies surviving the Briggs pre-pass) it
//     must leave no more moves, and across all such units it must
//     remove at least 30% of the copies the pre-pass left behind.
//
// The margin comes from retesting: the pre-pass runs its conservative
// test once against the full-pressure graph, while IRC retests every
// move as simplification lowers its neighborhood's degrees.
func TestIRCNeverWorseThanBriggs(t *testing.T) {
	briggs := regalloc.DefaultOptions()
	briggs.ConservativeCoalesce = true

	ircOpt := regalloc.DefaultOptions()
	ircOpt.Heuristic = regalloc.IRC

	type unit struct {
		name    string // label for messages
		routine string // routine to allocate
		prog    *regalloc.Program
	}
	var units []unit
	for _, w := range workloads.All() {
		prog, err := regalloc.Compile(w.Source)
		if err != nil {
			t.Fatalf("%s: %v", w.Program, err)
		}
		for _, r := range w.Routines {
			units = append(units, unit{w.Program + "/" + r, r, prog})
		}
	}
	for seed := uint64(0); seed < 100; seed++ {
		prog, err := regalloc.Compile(fuzzgen.Generate(seed, fuzzgen.Config{}))
		if err != nil {
			t.Fatalf("fuzzgen seed %d: %v", seed, err)
		}
		units = append(units, unit{fmt.Sprintf("fz/%d", seed), "FZ", prog})
	}

	var heavyBriggs, heavyIRC int
	for _, u := range units {
		bres, err := u.prog.Allocate(u.routine, briggs)
		if err != nil {
			t.Fatalf("%s briggs: %v", u.name, err)
		}
		ires, err := u.prog.Allocate(u.routine, ircOpt)
		if err != nil {
			t.Fatalf("%s irc: %v", u.name, err)
		}
		bcost := bres.TotalSpillCost()
		icost := ires.TotalSpillCost()
		if icost > bcost {
			t.Errorf("%s: irc spill cost %.1f exceeds briggs %.1f", u.name, icost, bcost)
		}
		bm, im := countMoves(bres.Func), countMoves(ires.Func)
		if bm >= 4 {
			heavyBriggs += bm
			heavyIRC += im
			if im > bm {
				t.Errorf("%s: irc leaves %d moves, briggs leaves %d", u.name, im, bm)
			}
		}
		t.Logf("%s: moves briggs=%d irc=%d, cost briggs=%.1f irc=%.1f", u.name, bm, im, bcost, icost)
	}
	if heavyBriggs == 0 {
		t.Fatal("no move-heavy units in the corpus; the differential is vacuous")
	}
	eliminated := float64(heavyBriggs-heavyIRC) / float64(heavyBriggs)
	t.Logf("move-heavy units: briggs leaves %d copies, irc leaves %d (%.0f%% eliminated)",
		heavyBriggs, heavyIRC, eliminated*100)
	if eliminated < 0.30 {
		t.Fatalf("irc eliminated only %.0f%% of the copies briggs left; want >= 30%%", eliminated*100)
	}
}
