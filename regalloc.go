// Package regalloc reproduces the register allocator of Briggs,
// Cooper, Kennedy & Torczon, "Coloring Heuristics for Register
// Allocation" (PLDI 1989): a Chaitin-style graph-coloring allocator
// with the paper's optimistic coloring improvement, embedded in a
// complete mini-FORTRAN compiler targeting a simulated RT/PC-like
// machine.
//
// The typical flow is:
//
//	prog, err := regalloc.Compile(source)
//	res, err := prog.Allocate("SVD", regalloc.Options{Heuristic: regalloc.Briggs, KInt: 16, KFloat: 8, ...})
//	// res.FirstPassSpilled(), res.LiveRanges(), ...
//
// and for dynamic (simulated) measurements:
//
//	machine := regalloc.RTPC()
//	code, _, err := prog.Assemble(machine, opts)
//	m := regalloc.NewVM(code, memWords)
//	m.Call("QSORT", vm.Int(base), vm.Int(n))
//
// Subpackages under internal/ implement each stage; this package is
// the stable surface.
package regalloc

import (
	"fmt"
	"sync"

	"regalloc/internal/alloc"
	"regalloc/internal/asm"
	"regalloc/internal/color"
	"regalloc/internal/ir"
	"regalloc/internal/irgen"
	"regalloc/internal/irinterp"
	"regalloc/internal/opt"
	"regalloc/internal/parser"
	"regalloc/internal/sem"
	"regalloc/internal/target"
	"regalloc/internal/vm"
)

// Heuristic selects the coloring algorithm. See package
// internal/color for the definitions.
type Heuristic = color.Heuristic

// The three heuristics the paper compares: Chaitin's pessimistic
// coloring ("Old" in the paper's tables), the optimistic coloring of
// Briggs et al. ("New"), and Matula–Beck smallest-last ordering (the
// cost-blind linear-time comparator of §2.2).
const (
	Chaitin    = color.Chaitin
	Briggs     = color.Briggs
	MatulaBeck = color.MatulaBeck
)

// Options configures the allocator; it is alloc.Options re-exported.
type Options = alloc.Options

// Result is a completed allocation; it is alloc.Result re-exported.
type Result = alloc.Result

// Machine describes the simulated target.
type Machine = target.Machine

// RTPC returns the paper's machine: 16 GPRs + 8 FPRs.
func RTPC() Machine { return target.RTPC() }

// DefaultOptions returns the paper's default configuration
// (optimistic heuristic, 16/8 registers, cost/degree spill metric).
func DefaultOptions() Options { return alloc.DefaultOptions() }

// Program is a compiled mini-FORTRAN program, ready for allocation.
type Program struct {
	IR *ir.Program
}

// Compile parses, checks, lowers, and optimizes source. The
// machine-independent optimizer (local CSE + loop-invariant code
// motion) runs by default because the paper's compiler was an
// optimizing compiler and the optimizer's long-lived temporaries are
// what creates the live-range structure the paper studies; use
// CompileNoOpt for the unoptimized ablation.
func Compile(source string) (*Program, error) {
	return compile(source, true)
}

// CompileNoOpt compiles without the machine-independent optimizer.
func CompileNoOpt(source string) (*Program, error) {
	return compile(source, false)
}

func compile(source string, optimize bool) (*Program, error) {
	astProg, err := parser.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	info, err := sem.Check(astProg)
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	irProg, err := irgen.Gen(astProg, info, irgen.DefaultStaticStart)
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	if optimize {
		for _, f := range irProg.Funcs {
			opt.Run(f)
			if err := ir.Validate(f); err != nil {
				return nil, fmt.Errorf("optimize: %w", err)
			}
		}
	}
	return &Program{IR: irProg}, nil
}

// Functions lists the program's unit names in source order.
func (p *Program) Functions() []string {
	names := make([]string, len(p.IR.Funcs))
	for i, f := range p.IR.Funcs {
		names[i] = f.Name
	}
	return names
}

// Func returns the IR of one unit, or nil.
func (p *Program) Func(name string) *ir.Func { return p.IR.Func(name) }

// Allocate runs register allocation for one unit.
func (p *Program) Allocate(name string, opt Options) (*Result, error) {
	f := p.IR.Func(name)
	if f == nil {
		return nil, fmt.Errorf("regalloc: no unit %s", name)
	}
	return alloc.Run(f, opt)
}

// Assemble allocates every unit with opt and lowers the result to
// machine code for m. Units are independent, so they are allocated
// in parallel; the output is deterministic (unit order and every
// per-unit result are position-fixed). It returns the code and the
// per-unit allocation results.
func (p *Program) Assemble(m Machine, opt Options) (*asm.Program, map[string]*Result, error) {
	opt.KInt = m.NumGPR
	opt.KFloat = m.NumFPR
	type slot struct {
		af  *asm.Func
		res *Result
		err error
	}
	slots := make([]slot, len(p.IR.Funcs))
	var wg sync.WaitGroup
	for i, f := range p.IR.Funcs {
		wg.Add(1)
		go func(i int, f *ir.Func) {
			defer wg.Done()
			res, err := alloc.Run(f, opt)
			if err != nil {
				slots[i].err = fmt.Errorf("regalloc: %s: %w", f.Name, err)
				return
			}
			af, err := asm.Lower(res.Func, res.Colors, m)
			if err != nil {
				slots[i].err = err
				return
			}
			slots[i] = slot{af: af, res: res}
		}(i, f)
	}
	wg.Wait()
	code := asm.NewProgram()
	results := make(map[string]*Result, len(p.IR.Funcs))
	for i, f := range p.IR.Funcs {
		if slots[i].err != nil {
			return nil, nil, slots[i].err
		}
		code.Add(slots[i].af)
		results[f.Name] = slots[i].res
	}
	return code, results, nil
}

// MemWords suggests a simulator memory size: enough for the static
// data plus generous headroom for driver-managed arrays below the
// static area.
func (p *Program) MemWords() int {
	n := p.IR.StaticEnd + (1 << 16)
	if n < (1 << 22) {
		n = 1 << 22
	}
	return int(n)
}

// NewVM returns a simulator over assembled code.
func NewVM(code *asm.Program, memWords int) *vm.VM { return vm.New(code, memWords) }

// NewInterp returns the reference IR interpreter for the program.
func (p *Program) NewInterp(memWords int) *irinterp.Interp {
	return irinterp.New(p.IR, memWords)
}
