package graphgen

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"regalloc/internal/ig"
	"regalloc/internal/ir"
)

// The .ig text format lets interference graphs travel between tools
// (cmd/regalloc reads it; tests and external generators write it):
//
//	n <nodes>          must come first
//	e <a> <b>          interference edge, 0-based
//	c <a> <cost>       spill cost (default 1)
//	# comment          (and blank lines) ignored
//
// The parser is strict: self edges, duplicate edges, negative or NaN
// costs, and node counts beyond MaxNodes are all rejected — .ig
// files come from outside the process, and a malformed graph
// accepted silently would surface much later as a nonsense coloring.

// MaxNodes bounds the node count ReadGraph accepts, so untrusted
// input cannot make it allocate unbounded memory.
const MaxNodes = 1 << 20

// ReadGraph parses the .ig format.
func ReadGraph(rd io.Reader) (*ig.Graph, []float64, error) {
	var g *ig.Graph
	var costs []float64
	sc := bufio.NewScanner(rd)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		bad := func(why string) (*ig.Graph, []float64, error) {
			return nil, nil, fmt.Errorf("line %d: %s: %q", line, why, sc.Text())
		}
		switch fields[0] {
		case "n":
			if g != nil {
				return bad("duplicate n directive")
			}
			if len(fields) != 2 {
				return bad("malformed")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return bad("bad node count")
			}
			if n > MaxNodes {
				return bad("node count exceeds limit")
			}
			g = ig.New(make([]ir.Class, n))
			costs = make([]float64, n)
			for i := range costs {
				costs[i] = 1
			}
		case "e":
			if g == nil || len(fields) != 3 {
				return bad("malformed edge")
			}
			a, err1 := strconv.Atoi(fields[1])
			b, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || a < 0 || b < 0 || a >= g.NumNodes() || b >= g.NumNodes() {
				return bad("edge out of range")
			}
			if a == b {
				return bad("self edge")
			}
			if g.Interfere(int32(a), int32(b)) {
				return bad("duplicate edge")
			}
			g.AddEdge(int32(a), int32(b))
		case "c":
			if g == nil || len(fields) != 3 {
				return bad("malformed cost")
			}
			a, err1 := strconv.Atoi(fields[1])
			c, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil || a < 0 || a >= g.NumNodes() {
				return bad("cost out of range")
			}
			if !(c >= 0) { // rejects negative costs and NaN in one test
				return bad("negative cost")
			}
			costs[a] = c
		default:
			return bad("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if g == nil {
		return nil, nil, fmt.Errorf("no 'n' directive")
	}
	return g, costs, nil
}

// WriteGraph emits the .ig format.
func WriteGraph(w io.Writer, g *ig.Graph, costs []float64) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "n %d\n", g.NumNodes())
	for a := int32(0); a < int32(g.NumNodes()); a++ {
		for _, b := range g.Neighbors(a) {
			if b > a {
				fmt.Fprintf(bw, "e %d %d\n", a, b)
			}
		}
	}
	for i, c := range costs {
		if c != 1 {
			fmt.Fprintf(bw, "c %d %g\n", i, c)
		}
	}
	return bw.Flush()
}
