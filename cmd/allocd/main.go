// Command allocd serves the register allocator over HTTP: a small
// production-shaped service wrapping the library, with the full
// export surface a fleet expects.
//
//	allocd -addr :8080
//
// Endpoints:
//
//	POST /alloc          allocate a mini-FORTRAN source or color a
//	                     .ig interference graph (the body; the kind
//	                     is sniffed, or forced with ?input=src|ig).
//	                     Query parameters mirror the library's
//	                     Options: heuristic, kint, kfloat, metric,
//	                     coalesce, conservative, remat, split,
//	                     workers, maxpasses; plus unit=NAME to pick
//	                     one routine, colors=1 to include the
//	                     assignment, and for ?heuristic=pcolor the
//	                     seed and workers of the parallel engine.
//	                     portfolio=1 (or a comma-separated candidate
//	                     list, e.g. portfolio=briggs,chaitin) races
//	                     the strategy portfolio per routine and keeps
//	                     the cheapest verified result; pmode, pbudget,
//	                     and pseeds tune the race. Each racing
//	                     candidate is admitted against -max-inflight
//	                     individually.
//	GET  /metrics        Prometheus text exposition: the run
//	                     registry (spills, palettes, per-phase
//	                     latency histograms) plus live trace-counter
//	                     totals and service gauges.
//	GET  /healthz        liveness (always ok while the process runs).
//	GET  /readyz         readiness (503 once draining begins).
//	GET  /debug/pprof/   the standard Go profiler endpoints.
//
// On SIGTERM or SIGINT the service stops advertising readiness,
// drains in-flight requests for -drain at most, then exits 0; a
// second signal aborts immediately.
//
// Example:
//
//	curl -sS -X POST --data-binary @examples/saxpyish.f \
//	  'localhost:8080/alloc?heuristic=briggs&kint=8'
//	curl -sS localhost:8080/metrics | grep regalloc_runs_total
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	drain := flag.Duration("drain", 10*time.Second, "max time to drain in-flight requests on shutdown")
	maxInflight := flag.Int("max-inflight", 2*runtime.GOMAXPROCS(0), "max concurrently served /alloc requests (others queue)")
	allocTimeout := flag.Duration("alloc-timeout", 0, "per-request /alloc deadline, queueing included (0 disables); expiry answers 503")
	flag.Parse()

	s := newServer(*maxInflight)
	s.allocTimeout = *allocTimeout
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "allocd: listening on %s (max-inflight %d)\n", *addr, *maxInflight)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errc:
		// ListenAndServe only returns on failure to bind or a fatal
		// accept error; either way the service is dead.
		fmt.Fprintln(os.Stderr, "allocd:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "allocd: %s: draining for up to %s\n", sig, *drain)
		s.beginShutdown()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		go func() {
			<-sigc
			fmt.Fprintln(os.Stderr, "allocd: second signal, aborting")
			cancel()
		}()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "allocd: shutdown:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "allocd: drained, exiting")
	}
}
