package workloads

// simplexSource is a parallel multi-directional simplex search in
// the style of Torczon's thesis (the paper's SIMPLEX program): the
// driver repeatedly reflects the whole simplex through its best
// vertex, tries an expansion when the reflection improves, and
// contracts otherwise. VALUE is a Rosenbrock-style objective;
// CONVERGE measures simplex edge lengths. The driver routine is by
// far the largest unit, matching Figure 5's profile (the three
// helpers spill little or nothing; SIMPLEX itself is the interesting
// case).
const simplexSource = `
      REAL FUNCTION VALUE(X,N)
C     objective function: a chained Rosenbrock valley
      REAL X(*),SUM,A,B,T1,T2
      INTEGER I,N
      SUM = 0.0
      DO I = 1,N-1
         A = X(I+1) - X(I)*X(I)
         B = 1.0 - X(I)
         T1 = 100.0*A*A
         T2 = B*B
         SUM = SUM + T1 + T2
      ENDDO
      VALUE = SUM
      RETURN
      END

      INTEGER FUNCTION CONVERGE(S,LDS,N,TOL)
C     1 when every edge from the first vertex is shorter than tol
      REAL S(LDS,*),TOL,D,DIFF,DMAX
      INTEGER I,J,LDS,N,NP1
      NP1 = N + 1
      DMAX = 0.0
      DO J = 2,NP1
         D = 0.0
         DO I = 1,N
            DIFF = S(I,J) - S(I,1)
            D = D + DIFF*DIFF
         ENDDO
         IF (D .GT. DMAX) DMAX = D
      ENDDO
      CONVERGE = 0
      IF (SQRT(DMAX) .LE. TOL) CONVERGE = 1
      RETURN
      END

      SUBROUTINE CONSTRUCT(S,LDS,N,IBEST,ALPHA,SNEW)
C     build the simplex reflected (alpha=1), expanded (alpha=2), or
C     contracted (alpha=-0.5) through the best vertex
      REAL S(LDS,*),SNEW(LDS,*),ALPHA,BASE
      INTEGER I,J,LDS,N,NP1,IBEST
      NP1 = N + 1
      DO J = 1,NP1
         IF (J .EQ. IBEST) THEN
            DO I = 1,N
               SNEW(I,J) = S(I,IBEST)
            ENDDO
         ELSE
            DO I = 1,N
               BASE = S(I,IBEST)
               SNEW(I,J) = BASE + ALPHA*(BASE - S(I,J))
            ENDDO
         ENDIF
      ENDDO
      RETURN
      END

      SUBROUTINE SIMPLEX(S,LDS,N,MAXIT,TOL,SR,SE,FV,FR,FE,ITER)
C     multi-directional search driver
      REAL S(LDS,*),SR(LDS,*),SE(LDS,*),FV(*),FR(*),FE(*),TOL
      REAL FBEST,FRBEST,FEBEST
      INTEGER LDS,N,MAXIT,ITER(*)
      INTEGER I,J,NP1,IBEST,IT,ICONV,IRB,IEB
      NP1 = N + 1
C     evaluate the initial simplex and find its best vertex
      DO J = 1,NP1
         FV(J) = VALUE(S(1,J),N)
      ENDDO
      IBEST = 1
      FBEST = FV(1)
      DO J = 2,NP1
         IF (FV(J) .LT. FBEST) THEN
            FBEST = FV(J)
            IBEST = J
         ENDIF
      ENDDO
      IT = 0
      ICONV = CONVERGE(S,LDS,N,TOL)
      DO WHILE (IT .LT. MAXIT .AND. ICONV .EQ. 0)
         IT = IT + 1
C        rotation: reflect every vertex through the best
         CALL CONSTRUCT(S,LDS,N,IBEST,1.0,SR)
         DO J = 1,NP1
            FR(J) = VALUE(SR(1,J),N)
         ENDDO
         IRB = 1
         FRBEST = FR(1)
         DO J = 2,NP1
            IF (FR(J) .LT. FRBEST) THEN
               FRBEST = FR(J)
               IRB = J
            ENDIF
         ENDDO
         IF (FRBEST .LT. FBEST) THEN
C           the rotation improved: try expanding
            CALL CONSTRUCT(S,LDS,N,IBEST,2.0,SE)
            DO J = 1,NP1
               FE(J) = VALUE(SE(1,J),N)
            ENDDO
            IEB = 1
            FEBEST = FE(1)
            DO J = 2,NP1
               IF (FE(J) .LT. FEBEST) THEN
                  FEBEST = FE(J)
                  IEB = J
               ENDIF
            ENDDO
            IF (FEBEST .LT. FRBEST) THEN
               DO J = 1,NP1
                  DO I = 1,N
                     S(I,J) = SE(I,J)
                  ENDDO
                  FV(J) = FE(J)
               ENDDO
               IBEST = IEB
               FBEST = FEBEST
            ELSE
               DO J = 1,NP1
                  DO I = 1,N
                     S(I,J) = SR(I,J)
                  ENDDO
                  FV(J) = FR(J)
               ENDDO
               IBEST = IRB
               FBEST = FRBEST
            ENDIF
         ELSE
C           no improvement: contract toward the best vertex
            CALL CONSTRUCT(S,LDS,N,IBEST,-0.5,SR)
            DO J = 1,NP1
               FR(J) = VALUE(SR(1,J),N)
            ENDDO
            DO J = 1,NP1
               DO I = 1,N
                  S(I,J) = SR(I,J)
               ENDDO
               FV(J) = FR(J)
            ENDDO
            IBEST = 1
            FBEST = FV(1)
            DO J = 2,NP1
               IF (FV(J) .LT. FBEST) THEN
                  FBEST = FV(J)
                  IBEST = J
               ENDIF
            ENDDO
         ENDIF
         ICONV = CONVERGE(S,LDS,N,TOL)
      ENDDO
      ITER(1) = IT
      RETURN
      END
`
