package ig

import (
	"regalloc/internal/bitset"
	"regalloc/internal/dataflow"
	"regalloc/internal/ir"
	"regalloc/internal/machine"
	"regalloc/internal/obs"
)

// MachineGraph is an interference graph extended with a machine
// model's precolored nodes: the function's virtual registers occupy
// nodes [0, NumVRegs) exactly as in the plain build, and every
// physical register of the model follows as one precolored node with
// a fixed color. Pre maps each node to its fixed color (NoPreColor
// for virtual registers), so consumers can treat "has a fixed color"
// and "is precolored" as the same test.
type MachineGraph struct {
	*Graph
	// NumVRegs is the virtual-register count; nodes at or beyond it
	// are precolored.
	NumVRegs int
	// Model is the machine description the graph was built against;
	// nil for the degenerate wrap of a plain graph (no precolored
	// nodes, no clobber edges).
	Model *machine.Model
	// Pre holds each node's fixed color, NoPreColor for virtual
	// registers. len(Pre) == NumNodes().
	Pre []int16
}

// NoPreColor marks a node without a fixed color in MachineGraph.Pre.
const NoPreColor int16 = -1

// PreNode returns the node id of physical register r of class c.
func (mg *MachineGraph) PreNode(c ir.Class, r int16) int32 {
	return int32(mg.NumVRegs) + mg.Model.PreOffset(c) + int32(r)
}

// Precolored reports whether node a is a precolored physical
// register.
func (mg *MachineGraph) Precolored(a int32) bool {
	return int(a) >= mg.NumVRegs
}

// WrapPlain adapts a machine-free graph to the MachineGraph shape:
// no precolored nodes, every Pre entry NoPreColor. Consumers that
// handle both modes (the IRC allocator) take a MachineGraph
// unconditionally and see the plain graph through it.
func WrapPlain(g *Graph) *MachineGraph {
	pre := make([]int16, g.NumNodes())
	for i := range pre {
		pre[i] = NoPreColor
	}
	return &MachineGraph{Graph: g, NumVRegs: g.NumNodes(), Pre: pre}
}

// BuildWithMachine constructs the machine-extended interference graph
// of f from a precomputed liveness: the plain def × live-after
// enumeration over the virtual registers, plus the machine model's
// constraint edges —
//
//   - every pair of same-class precolored nodes interferes (physical
//     registers are distinct), and
//   - every virtual register live across a call interferes with every
//     caller-saved register of its class, so call-crossing ranges can
//     only take callee-saved colors.
//
// The enumeration is sequential: machine-constrained units are
// routine-sized, and the clobber sweep reuses the same liveness walk
// as the build, so sharding would buy nothing here.
func BuildWithMachine(f *ir.Func, lv *dataflow.Liveness, m *machine.Model, tr *obs.Tracer) *MachineGraph {
	n := f.NumRegs()
	p := m.NumPrecolored()
	classes := make([]ir.Class, n+p)
	for i := 0; i < n; i++ {
		classes[i] = f.RegClass(ir.Reg(i))
	}
	pre := make([]int16, n+p)
	for i := range pre {
		pre[i] = NoPreColor
	}
	for i := int32(0); int(i) < p; i++ {
		c, r := m.PreClass(i)
		classes[n+int(i)] = c
		pre[n+int(i)] = r
	}
	g := New(classes)
	mg := &MachineGraph{Graph: g, NumVRegs: n, Model: m, Pre: pre}

	// Physical registers of a class pairwise interfere.
	for _, c := range []ir.Class{ir.ClassInt, ir.ClassFloat} {
		for a := int16(0); int(a) < m.NumRegs[c]; a++ {
			for b := a + 1; int(b) < m.NumRegs[c]; b++ {
				g.AddEdge(mg.PreNode(c, a), mg.PreNode(c, b))
			}
		}
	}

	// The plain enumeration plus the call-clobber sweep, in one
	// backward liveness walk per block.
	attempts := 0
	for _, b := range f.Blocks {
		lv.LiveAcross(f, b, func(_ int, in *ir.Instr, liveAfter *bitset.Set) {
			d := in.Def()
			moveSrc := ir.NoReg
			if in.IsMove() {
				moveSrc = in.A
			}
			isCall := in.Op == ir.OpCall
			liveAfter.ForEach(func(l int) {
				lr := ir.Reg(l)
				if d != ir.NoReg && lr != d && lr != moveSrc {
					attempts++
					g.AddEdge(int32(d), int32(l))
				}
				if isCall && lr != d {
					// Live across the call: clobbered by every
					// caller-saved register of its class.
					c := f.RegClass(lr)
					for r := int16(0); int(r) < m.CallerSaved[c]; r++ {
						g.AddEdge(int32(l), mg.PreNode(c, r))
					}
				}
			})
		})
	}
	g.Finalize()
	if tr.Enabled() {
		tr.Counter(obs.PhaseBuild, "ig.edge_inserts", int64(attempts))
		tr.Counter(obs.PhaseBuild, "ig.machine_nodes", int64(p))
	}
	return mg
}
