// Package parser builds the ast for mini-FORTRAN source.
//
// The grammar is a structured subset of FORTRAN 77:
//
//	program    = { unit }
//	unit       = header { decl EOL } { stmt } "END" EOL
//	header     = "SUBROUTINE" name [ "(" names ")" ] EOL
//	           | [ type ] "FUNCTION" name "(" names ")" EOL
//	type       = "INTEGER" | "REAL" | "DOUBLE" "PRECISION"
//	decl       = type item { "," item }
//	item       = name [ "(" dim { "," dim } ")" ]     dim = int | "*"
//	stmt       = [ int-label ] core EOL
//	core       = var "=" expr
//	           | "DO" name "=" expr "," expr [ "," int ] | "DO" "WHILE" "(" expr ")"
//	           | "ENDDO" | "IF" "(" expr ")" ("THEN" | core)
//	           | "ELSEIF" "(" expr ")" "THEN" | "ELSE" | "ENDIF"
//	           | "CALL" name [ "(" exprs ")" ] | "RETURN" | "EXIT" | "CYCLE" | "CONTINUE"
//
// Expression precedence (loosest to tightest): .OR., .AND., .NOT.,
// relationals, +/-, * and /, unary -, ** (right associative).
package parser

import (
	"regalloc/internal/ast"
	"regalloc/internal/lexer"
	"regalloc/internal/source"
	"regalloc/internal/token"
)

// Parse parses a whole program.
func Parse(src string) (*ast.Program, error) {
	p := &parser{lx: lexer.New(src)}
	p.next()
	prog := &ast.Program{}
	for p.tok.Kind != token.EOF {
		if p.tok.Kind == token.EOL {
			p.next()
			continue
		}
		u := p.parseUnit()
		if u != nil {
			prog.Units = append(prog.Units, u)
		}
		if len(p.errs) > 20 {
			break
		}
	}
	p.errs = append(p.errs, p.lx.Errors()...)
	return prog, p.errs.Err()
}

type parser struct {
	lx   *lexer.Lexer
	tok  lexer.Token
	prev lexer.Token
	errs source.ErrorList
}

func (p *parser) next() {
	p.prev = p.tok
	p.tok = p.lx.Next()
}

func (p *parser) errorf(pos source.Pos, format string, args ...interface{}) {
	p.errs.Add(pos, format, args...)
}

func (p *parser) expect(k token.Kind) lexer.Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s %q", k, t.Kind, t.Lit)
		p.syncEOL()
		return t
	}
	p.next()
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

// syncEOL skips to the next end of statement for error recovery.
func (p *parser) syncEOL() {
	for p.tok.Kind != token.EOL && p.tok.Kind != token.EOF {
		p.next()
	}
	if p.tok.Kind == token.EOL {
		p.next()
	}
}

func (p *parser) expectEOL() {
	if p.tok.Kind != token.EOL && p.tok.Kind != token.EOF {
		p.errorf(p.tok.Pos, "expected end of statement, found %s %q", p.tok.Kind, p.tok.Lit)
	}
	p.syncEOL()
}

func (p *parser) parseUnit() *ast.Unit {
	u := &ast.Unit{Pos: p.tok.Pos}
	switch p.tok.Kind {
	case token.SUBROUTINE:
		p.next()
		u.Kind = ast.KindSubroutine
		u.Name = p.expect(token.IDENT).Lit
		if p.accept(token.LPAREN) {
			u.Params = p.parseNameList()
			p.expect(token.RPAREN)
		}
	case token.INTEGER, token.REAL, token.DOUBLE, token.FUNCTION:
		u.Kind = ast.KindFunction
		u.RetType = ast.TypeNone
		if p.tok.Kind != token.FUNCTION {
			u.RetType = p.parseType()
		}
		p.expect(token.FUNCTION)
		u.Name = p.expect(token.IDENT).Lit
		p.expect(token.LPAREN)
		u.Params = p.parseNameList()
		p.expect(token.RPAREN)
	default:
		p.errorf(p.tok.Pos, "expected SUBROUTINE or FUNCTION, found %s %q", p.tok.Kind, p.tok.Lit)
		p.syncEOL()
		return nil
	}
	p.expectEOL()

	// Declarations.
	for {
		if p.tok.Kind == token.EOL {
			p.next()
			continue
		}
		if p.tok.Kind != token.INTEGER && p.tok.Kind != token.REAL && p.tok.Kind != token.DOUBLE {
			break
		}
		p.parseDecl(u)
	}

	// Body.
	u.Body = p.parseStmts(token.END)
	p.expect(token.END)
	p.expectEOL()
	return u
}

func (p *parser) parseType() ast.Type {
	switch p.tok.Kind {
	case token.INTEGER:
		p.next()
		return ast.TypeInt
	case token.REAL:
		p.next()
		return ast.TypeReal
	case token.DOUBLE:
		p.next()
		p.expect(token.PRECISION)
		return ast.TypeReal
	}
	p.errorf(p.tok.Pos, "expected type, found %s", p.tok.Kind)
	p.next()
	return ast.TypeNone
}

func (p *parser) parseNameList() []string {
	var names []string
	if p.tok.Kind == token.RPAREN {
		return names
	}
	for {
		names = append(names, p.expect(token.IDENT).Lit)
		if !p.accept(token.COMMA) {
			return names
		}
	}
}

func (p *parser) parseDecl(u *ast.Unit) {
	typ := p.parseType()
	for {
		pos := p.tok.Pos
		name := p.expect(token.IDENT).Lit
		d := &ast.Decl{Type: typ, Name: name, Pos: pos}
		if p.accept(token.LPAREN) {
			for {
				switch p.tok.Kind {
				case token.INTCONST:
					d.Dims = append(d.Dims, ast.Dim{Const: p.tok.Int})
					p.next()
				case token.STAR:
					d.Dims = append(d.Dims, ast.Dim{Star: true})
					p.next()
				case token.IDENT:
					d.Dims = append(d.Dims, ast.Dim{Name: p.tok.Lit})
					p.next()
				default:
					p.errorf(p.tok.Pos, "expected array dimension, found %s", p.tok.Kind)
					p.next()
				}
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
		}
		u.Decls = append(u.Decls, d)
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expectEOL()
}

// parseStmts parses statements until one of the terminator kinds is
// the current token (END, ENDDO, ENDIF, ELSE, ELSEIF).
func (p *parser) parseStmts(terms ...token.Kind) []ast.Stmt {
	var list []ast.Stmt
	for {
		if p.tok.Kind == token.EOL {
			p.next()
			continue
		}
		if p.tok.Kind == token.EOF {
			return list
		}
		for _, t := range terms {
			if p.tok.Kind == t {
				return list
			}
		}
		// ELSE/ELSEIF/ENDIF/ENDDO always terminate a nested list;
		// seeing one when not expected is an error handled by caller.
		switch p.tok.Kind {
		case token.END, token.ENDDO, token.ENDIF, token.ELSE, token.ELSEIF:
			return list
		}
		if s := p.parseStmt(); s != nil {
			list = append(list, s)
		}
	}
}

func (p *parser) parseStmt() ast.Stmt {
	// Optional numeric statement label (ignored; the dialect has no GOTO).
	if p.tok.Kind == token.INTCONST {
		p.next()
	}
	pos := p.tok.Pos
	switch p.tok.Kind {
	case token.DO:
		return p.parseDo(pos)
	case token.IF:
		return p.parseIf(pos)
	case token.CALL:
		p.next()
		name := p.expect(token.IDENT).Lit
		var args []ast.Expr
		if p.accept(token.LPAREN) {
			args = p.parseExprList()
			p.expect(token.RPAREN)
		}
		p.expectEOL()
		return &ast.CallStmt{Name: name, Args: args, Pos: pos}
	case token.RETURN:
		p.next()
		p.expectEOL()
		return &ast.ReturnStmt{Pos: pos}
	case token.EXIT:
		p.next()
		p.expectEOL()
		return &ast.ExitStmt{Pos: pos}
	case token.CYCLE:
		p.next()
		p.expectEOL()
		return &ast.CycleStmt{Pos: pos}
	case token.CONTINUE:
		p.next()
		p.expectEOL()
		return &ast.ContinueStmt{Pos: pos}
	case token.GOTO:
		p.errorf(pos, "GOTO is not supported by this dialect; use structured control flow")
		p.syncEOL()
		return nil
	case token.IDENT:
		return p.parseAssign(pos)
	}
	p.errorf(pos, "unexpected %s %q at start of statement", p.tok.Kind, p.tok.Lit)
	p.syncEOL()
	return nil
}

func (p *parser) parseAssign(pos source.Pos) ast.Stmt {
	name := p.expect(token.IDENT).Lit
	lhs := &ast.VarRef{Name: name, Pos: pos}
	if p.accept(token.LPAREN) {
		lhs.Indexes = p.parseExprList()
		p.expect(token.RPAREN)
	}
	p.expect(token.ASSIGN)
	rhs := p.parseExpr()
	p.expectEOL()
	return &ast.AssignStmt{LHS: lhs, RHS: rhs, Pos: pos}
}

func (p *parser) parseDo(pos source.Pos) ast.Stmt {
	p.expect(token.DO)
	if p.tok.Kind == token.WHILE {
		p.next()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		p.expectEOL()
		body := p.parseStmts(token.ENDDO)
		p.expect(token.ENDDO)
		p.expectEOL()
		return &ast.WhileStmt{Cond: cond, Body: body, Pos: pos}
	}
	v := p.expect(token.IDENT).Lit
	p.expect(token.ASSIGN)
	from := p.parseExpr()
	p.expect(token.COMMA)
	to := p.parseExpr()
	step := int64(1)
	if p.accept(token.COMMA) {
		neg := p.accept(token.MINUS)
		t := p.expect(token.INTCONST)
		step = t.Int
		if neg {
			step = -step
		}
		if step == 0 {
			p.errorf(t.Pos, "DO step must be a nonzero constant")
			step = 1
		}
	}
	p.expectEOL()
	body := p.parseStmts(token.ENDDO)
	p.expect(token.ENDDO)
	p.expectEOL()
	return &ast.DoStmt{Var: v, From: from, To: to, Step: step, Body: body, Pos: pos}
}

func (p *parser) parseIf(pos source.Pos) ast.Stmt {
	p.expect(token.IF)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	if !p.accept(token.THEN) {
		// Logical IF: a single statement on the same line.
		s := p.parseLogicalIfBody()
		if s == nil {
			return nil
		}
		return &ast.IfStmt{Cond: cond, Then: []ast.Stmt{s}, Pos: pos}
	}
	p.expectEOL()
	then := p.parseStmts(token.ELSE, token.ELSEIF, token.ENDIF)
	node := &ast.IfStmt{Cond: cond, Then: then, Pos: pos}
	p.parseIfTail(node)
	return node
}

// parseIfTail handles ELSEIF chains, ELSE, and ENDIF for a block IF.
func (p *parser) parseIfTail(node *ast.IfStmt) {
	switch p.tok.Kind {
	case token.ELSEIF:
		epos := p.tok.Pos
		p.next()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		p.expect(token.THEN)
		p.expectEOL()
		then := p.parseStmts(token.ELSE, token.ELSEIF, token.ENDIF)
		nested := &ast.IfStmt{Cond: cond, Then: then, Pos: epos}
		node.Else = []ast.Stmt{nested}
		p.parseIfTail(nested)
	case token.ELSE:
		p.next()
		if p.tok.Kind == token.IF {
			// "ELSE IF (…) THEN" written as two words.
			epos := p.tok.Pos
			p.next()
			p.expect(token.LPAREN)
			cond := p.parseExpr()
			p.expect(token.RPAREN)
			p.expect(token.THEN)
			p.expectEOL()
			then := p.parseStmts(token.ELSE, token.ELSEIF, token.ENDIF)
			nested := &ast.IfStmt{Cond: cond, Then: then, Pos: epos}
			node.Else = []ast.Stmt{nested}
			p.parseIfTail(nested)
			return
		}
		p.expectEOL()
		node.Else = p.parseStmts(token.ENDIF)
		p.expect(token.ENDIF)
		p.expectEOL()
	case token.ENDIF:
		p.next()
		p.expectEOL()
	default:
		p.errorf(p.tok.Pos, "expected ELSE, ELSEIF or ENDIF, found %s", p.tok.Kind)
		p.syncEOL()
	}
}

func (p *parser) parseLogicalIfBody() ast.Stmt {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case token.IDENT:
		return p.parseAssign(pos)
	case token.CALL, token.RETURN, token.EXIT, token.CYCLE, token.CONTINUE:
		return p.parseStmt()
	}
	p.errorf(pos, "expected statement after logical IF, found %s", p.tok.Kind)
	p.syncEOL()
	return nil
}

func (p *parser) parseExprList() []ast.Expr {
	var list []ast.Expr
	if p.tok.Kind == token.RPAREN {
		return list
	}
	for {
		list = append(list, p.parseExpr())
		if !p.accept(token.COMMA) {
			return list
		}
	}
}

// parseExpr parses at the loosest precedence (.OR.).
func (p *parser) parseExpr() ast.Expr {
	e := p.parseAnd()
	for p.tok.Kind == token.OR {
		pos := p.tok.Pos
		p.next()
		e = &ast.BinExpr{Op: ast.OpOr, L: e, R: p.parseAnd(), Pos: pos}
	}
	return e
}

func (p *parser) parseAnd() ast.Expr {
	e := p.parseNot()
	for p.tok.Kind == token.AND {
		pos := p.tok.Pos
		p.next()
		e = &ast.BinExpr{Op: ast.OpAnd, L: e, R: p.parseNot(), Pos: pos}
	}
	return e
}

func (p *parser) parseNot() ast.Expr {
	if p.tok.Kind == token.NOT {
		pos := p.tok.Pos
		p.next()
		return &ast.UnExpr{Op: ast.OpNot, X: p.parseNot(), Pos: pos}
	}
	return p.parseRel()
}

func (p *parser) parseRel() ast.Expr {
	e := p.parseAdd()
	var op ast.BinOp
	switch p.tok.Kind {
	case token.LT:
		op = ast.OpLT
	case token.LE:
		op = ast.OpLE
	case token.GT:
		op = ast.OpGT
	case token.GE:
		op = ast.OpGE
	case token.EQ:
		op = ast.OpEQ
	case token.NE:
		op = ast.OpNE
	default:
		return e
	}
	pos := p.tok.Pos
	p.next()
	return &ast.BinExpr{Op: op, L: e, R: p.parseAdd(), Pos: pos}
}

func (p *parser) parseAdd() ast.Expr {
	e := p.parseMul()
	for {
		var op ast.BinOp
		switch p.tok.Kind {
		case token.PLUS:
			op = ast.OpAdd
		case token.MINUS:
			op = ast.OpSub
		default:
			return e
		}
		pos := p.tok.Pos
		p.next()
		e = &ast.BinExpr{Op: op, L: e, R: p.parseMul(), Pos: pos}
	}
}

func (p *parser) parseMul() ast.Expr {
	e := p.parseUnary()
	for {
		var op ast.BinOp
		switch p.tok.Kind {
		case token.STAR:
			op = ast.OpMul
		case token.SLASH:
			op = ast.OpDiv
		default:
			return e
		}
		pos := p.tok.Pos
		p.next()
		e = &ast.BinExpr{Op: op, L: e, R: p.parseUnary(), Pos: pos}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.tok.Kind {
	case token.MINUS:
		pos := p.tok.Pos
		p.next()
		return &ast.UnExpr{Op: ast.OpNeg, X: p.parseUnary(), Pos: pos}
	case token.PLUS:
		p.next()
		return p.parseUnary()
	}
	return p.parsePow()
}

func (p *parser) parsePow() ast.Expr {
	e := p.parsePrimary()
	if p.tok.Kind == token.POW {
		pos := p.tok.Pos
		p.next()
		// Right associative; exponent may itself be unary-negated.
		return &ast.BinExpr{Op: ast.OpPow, L: e, R: p.parseUnary(), Pos: pos}
	}
	return e
}

func (p *parser) parsePrimary() ast.Expr {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case token.INTCONST:
		v := p.tok.Int
		p.next()
		return &ast.IntLit{Val: v, Pos: pos}
	case token.REALCONST:
		v := p.tok.Real
		p.next()
		return &ast.RealLit{Val: v, Pos: pos}
	case token.IDENT:
		name := p.tok.Lit
		p.next()
		if p.accept(token.LPAREN) {
			args := p.parseExprList()
			p.expect(token.RPAREN)
			// Array reference or call: sem disambiguates.
			return &ast.CallExpr{Name: name, Args: args, Pos: pos}
		}
		return &ast.VarRef{Name: name, Pos: pos}
	case token.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	}
	p.errorf(pos, "expected expression, found %s %q", p.tok.Kind, p.tok.Lit)
	p.next()
	return &ast.IntLit{Val: 0, Pos: pos}
}
