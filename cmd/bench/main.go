// Command bench regenerates the paper's evaluation tables.
//
// Usage:
//
//	bench -figure 5          # Figure 5: static spills + dynamic gains
//	bench -figure 6          # Figure 6: the quicksort register study
//	bench -figure 7          # Figure 7: allocator phase CPU times
//	bench -figure ablations  # design-choice studies (DESIGN.md §7)
//	bench -figure integer    # the §3.2 integer-kernel extension
//	bench -figure passes     # §3.3 convergence of the Figure 4 cycle
//	bench -figure pcolor     # speculative parallel coloring study
//	bench -figure portfolio  # heuristic-portfolio racing study
//	bench -figure scale      # 10^5+-node CSR + parallel coloring tier
//	bench -figure ssa        # SSA-form chordal allocator study
//	bench -figure irc        # iterated register coalescing study
//	bench -figure all        # everything
//	bench -figure scale -scale-nodes 1000000
//	bench -figure 6 -n 200000
//
// Observability:
//
//	bench -figure 7 -trace out.jsonl        stream every allocator
//	                                        event (phase spans,
//	                                        counters, spill
//	                                        decisions) as JSON lines
//	bench -figure 7 -trace-perfetto t.json  write the same run as
//	                                        Chrome trace-event JSON
//	                                        for ui.perfetto.dev
//	bench -figure all -metrics              print aggregated counters
//	                                        and per-phase duration
//	                                        histograms
package main

import (
	"flag"
	"fmt"
	"os"

	"regalloc/internal/experiments"
	"regalloc/internal/fsutil"
	"regalloc/internal/obs"
	"regalloc/internal/obs/traceevent"
)

func main() {
	figure := flag.String("figure", "all", "which figure to regenerate: 5, 6, 7, ablations, integer, passes, pcolor, portfolio, scale, ssa, irc, or all")
	n := flag.Int64("n", 200000, "quicksort element count for figure 6")
	scaleNodes := flag.Int("scale-nodes", 100000, "node count per topology for -figure scale")
	tracePath := flag.String("trace", "", "write a JSON-lines allocator event trace to this file (\"-\" for stdout)")
	perfettoPath := flag.String("trace-perfetto", "", "write a Chrome/Perfetto trace-event JSON file (\"-\" for stdout)")
	metrics := flag.Bool("metrics", false, "print aggregated allocator metrics after the figures")
	benchJSON := flag.String("bench-json", "", "write a machine-readable phase benchmark to this file and exit")
	benchReps := flag.Int("bench-reps", 3, "repetitions per configuration in -bench-json mode (best is kept)")
	flag.Parse()

	if *benchJSON != "" {
		fail(runBenchJSON(*benchJSON, *benchReps))
		return
	}

	var traceSink obs.Sink
	closeTrace := func() error { return nil }
	if *tracePath != "" {
		w := os.Stdout
		var f *os.File
		if *tracePath != "-" {
			var err error
			f, err = os.Create(*tracePath)
			fail(err)
			w = f
		}
		js := obs.NewJSONSink(w)
		traceSink = js
		// Checked at exit, not dropped in a defer: a full disk
		// surfaces as a mid-stream write error (remembered by the
		// sink), at fsync, or at close, and any of them must fail the
		// run instead of shipping a silently truncated trace.
		closeTrace = func() error {
			if err := js.Err(); err != nil {
				return err
			}
			if f != nil {
				return fsutil.SyncClose(f)
			}
			return nil
		}
	}
	var perfettoSink *traceevent.Sink
	closePerfetto := func() error { return nil }
	if *perfettoPath != "" {
		perfettoSink = traceevent.New()
		// Buffered in the sink and written once at exit, through the
		// same fsync-or-error close path as every other result file.
		closePerfetto = func() error {
			if *perfettoPath == "-" {
				return perfettoSink.WriteJSON(os.Stdout)
			}
			f, err := os.Create(*perfettoPath)
			if err != nil {
				return err
			}
			if err := perfettoSink.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			return fsutil.SyncClose(f)
		}
	}
	var metricsSink *obs.MetricsSink
	if *metrics {
		metricsSink = obs.NewMetricsSink()
	}
	experiments.SetObserver(obs.Multi(traceSink, metricsSink, perfettoSink))

	run5 := *figure == "5" || *figure == "all"
	run6 := *figure == "6" || *figure == "all"
	run7 := *figure == "7" || *figure == "all"
	runAb := *figure == "ablations" || *figure == "all"
	runInt := *figure == "integer" || *figure == "all"
	runPass := *figure == "passes" || *figure == "all"
	runPC := *figure == "pcolor" || *figure == "all"
	runPort := *figure == "portfolio" || *figure == "all"
	runScale := *figure == "scale" || *figure == "all"
	runSSA := *figure == "ssa" || *figure == "all"
	runIRC := *figure == "irc" || *figure == "all"
	if !run5 && !run6 && !run7 && !runAb && !runInt && !runPass && !runPC && !runPort && !runScale && !runSSA && !runIRC {
		fmt.Fprintf(os.Stderr, "bench: unknown figure %q (want 5, 6, 7, ablations, integer, passes, pcolor, portfolio, scale, ssa, irc, or all)\n", *figure)
		os.Exit(2)
	}

	if run5 {
		fmt.Println("=== Figure 5: register allocation improvements ===")
		res, err := experiments.Figure5()
		fail(err)
		fmt.Println(res)
	}
	if run6 {
		fmt.Println("=== Figure 6: quicksort study ===")
		res, err := experiments.Figure6(*n)
		fail(err)
		fmt.Println(res)
	}
	if run7 {
		fmt.Println("=== Figure 7: CPU time for allocator phases ===")
		res, err := experiments.Figure7()
		fail(err)
		fmt.Println(res)
	}
	if runAb {
		fmt.Println("=== Ablations (beyond the paper; see DESIGN.md §7) ===")
		res, err := experiments.Ablations()
		fail(err)
		fmt.Println(res)
	}
	if runInt {
		fmt.Println("=== Integer kernels (the further study §3.2 asks for) ===")
		res, err := experiments.IntegerStudy()
		fail(err)
		fmt.Println(res)
	}
	if runPass {
		fmt.Println("=== Convergence (§3.3: passes around the Figure 4 cycle) ===")
		res, err := experiments.PassStudy()
		fail(err)
		fmt.Println(res)
	}
	if runPC {
		fmt.Println("=== Speculative parallel coloring (Rokos-style; beyond the paper) ===")
		res, err := experiments.PColorStudy()
		fail(err)
		fmt.Println(res)
	}
	if runPort {
		fmt.Println("=== Heuristic-portfolio racing (beyond the paper) ===")
		res, err := experiments.PortfolioStudy()
		fail(err)
		fmt.Println(res)
	}
	if runScale {
		fmt.Println("=== Scale tier: CSR adjacency + parallel coloring at 10^5+ nodes ===")
		res, err := experiments.ScaleStudy(*scaleNodes)
		fail(err)
		fmt.Println(res)
	}
	if runSSA {
		fmt.Println("=== SSA-form chordal allocation (beyond the paper) ===")
		res, err := experiments.SSAStudy()
		fail(err)
		fmt.Println(res)
	}
	if runIRC {
		fmt.Println("=== Iterated register coalescing (George-Appel; beyond the paper) ===")
		res, err := experiments.IRCStudy()
		fail(err)
		fmt.Println(res)
	}

	if metricsSink != nil {
		fmt.Println("=== Allocator metrics (aggregated over every run above) ===")
		fmt.Print(metricsSink.Snapshot())
	}
	if err := closeTrace(); err != nil {
		fmt.Fprintln(os.Stderr, "bench: closing trace:", err)
		os.Exit(1)
	}
	if err := closePerfetto(); err != nil {
		fmt.Fprintln(os.Stderr, "bench: writing perfetto trace:", err)
		os.Exit(1)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}
