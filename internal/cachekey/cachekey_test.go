package cachekey

import (
	"strings"
	"testing"

	"regalloc"
	"regalloc/internal/alloc"
	"regalloc/internal/graphgen"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
	"regalloc/internal/machine"
)

// TestGraphCanonicalAcrossEdgeOrder is the collision half of the
// contract: the same graph built in different edge orders (and
// round-tripped through the .ig text format) digests identically.
func TestGraphCanonicalAcrossEdgeOrder(t *testing.T) {
	classes := []ir.Class{ir.ClassInt, ir.ClassInt, ir.ClassFloat, ir.ClassInt}
	costs := []float64{1, 5, 2.5, 1}

	a := ig.New(classes)
	a.AddEdge(0, 1)
	a.AddEdge(1, 2)
	a.AddEdge(2, 3)

	b := ig.New(classes)
	b.AddEdge(2, 3)
	b.AddEdge(2, 1)
	b.AddEdge(1, 0)

	if Graph(a, costs) != Graph(b, costs) {
		t.Fatal("same graph, different insertion order: keys differ")
	}

	// Round-trip through the .ig text format: ReadGraph yields
	// all-int classes, so the fixture is all-int too.
	allInt := ig.New([]ir.Class{ir.ClassInt, ir.ClassInt, ir.ClassInt, ir.ClassInt})
	allInt.AddEdge(0, 1)
	allInt.AddEdge(1, 2)
	allInt.AddEdge(2, 3)
	var buf strings.Builder
	if err := graphgen.WriteGraph(&buf, allInt, costs); err != nil {
		t.Fatal(err)
	}
	c, cCosts, err := graphgen.ReadGraph(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if Graph(c, cCosts) != Graph(allInt, costs) {
		t.Fatal(".ig round-trip changed the key")
	}
}

// TestGraphSeparates is the separation half: a different edge set or
// cost vector must change the key.
func TestGraphSeparates(t *testing.T) {
	classes := []ir.Class{ir.ClassInt, ir.ClassInt, ir.ClassInt}
	costs := []float64{1, 1, 1}
	a := ig.New(classes)
	a.AddEdge(0, 1)

	b := ig.New(classes)
	b.AddEdge(0, 2)
	if Graph(a, costs) == Graph(b, costs) {
		t.Fatal("different edges, same key")
	}

	if Graph(a, costs) == Graph(a, []float64{1, 2, 1}) {
		t.Fatal("different costs, same key")
	}
}

func TestOptionsFingerprint(t *testing.T) {
	base := alloc.DefaultOptions()

	// Result-neutral knobs collide: Workers shards the build
	// byte-identically and Observer only watches.
	tuned := base
	tuned.Workers = 8
	if Options(base) != Options(tuned) {
		t.Fatal("Workers reached the fingerprint")
	}

	// An explicit default and the unset zero collide.
	def := base
	def.MaxPasses = 0
	explicit := base
	explicit.MaxPasses = 64
	if Options(def) != Options(explicit) {
		t.Fatal("default MaxPasses split the key")
	}

	// Result-affecting knobs separate.
	mutations := []func(*alloc.Options){
		func(o *alloc.Options) { o.Heuristic = 0 /* chaitin */ },
		func(o *alloc.Options) { o.KInt = 8 },
		func(o *alloc.Options) { o.KFloat = 4 },
		func(o *alloc.Options) { o.Metric = 1 },
		func(o *alloc.Options) { o.Coalesce = !o.Coalesce },
		func(o *alloc.Options) { o.ConservativeCoalesce = true },
		func(o *alloc.Options) { o.Rematerialize = true },
		func(o *alloc.Options) { o.Split = true },
		func(o *alloc.Options) { o.MaxPasses = 3 },
		func(o *alloc.Options) { o.CostParams.DepthBase = 8 },
		func(o *alloc.Options) { o.UsePColor = true },
		func(o *alloc.Options) { o.Heuristic = 4 /* irc */ },
		func(o *alloc.Options) { o.Machine = machine.RTPC() },
		func(o *alloc.Options) {
			m := *machine.RTPC()
			m.CallerSaved[0]++ // same counts, different save partition
			o.Machine = &m
		},
		func(o *alloc.Options) {
			m := *machine.RTPC()
			m.ArgRegs[0] = m.ArgRegs[0][:2] // fewer argument registers
			o.Machine = &m
		},
	}
	seen := map[Key]int{Options(base): -1}
	for i, mut := range mutations {
		o := base
		mut(&o)
		k := Options(o)
		if prev, dup := seen[k]; dup {
			t.Fatalf("mutation %d collides with %d", i, prev)
		}
		seen[k] = i
	}

	// Under pcolor the seed matters; without it, it must not.
	pc := base
	pc.UsePColor = true
	pc.PColorSeed = 1
	pc2 := pc
	pc2.PColorSeed = 2
	if Options(pc) == Options(pc2) {
		t.Fatal("pcolor seed ignored under UsePColor")
	}
	noPC := base
	noPC.PColorSeed = 99
	if Options(base) != Options(noPC) {
		t.Fatal("pcolor seed reached the fingerprint with the engine off")
	}
}

// TestFuncDigestNormalizesSource feeds two textually different but
// semantically identical sources through the compiler and checks the
// IR digests collide, while a real change separates them.
func TestFuncDigestNormalizesSource(t *testing.T) {
	compile := func(src string) *ir.Func {
		t.Helper()
		f := compileOne(t, src)
		return f
	}
	a := compile(`
      SUBROUTINE AX(N,X)
      REAL X(*)
      INTEGER I,N
      DO I = 1,N
         X(I) = X(I) + 1.0
      ENDDO
      RETURN
      END
`)
	b := compile(`
C     a comment, extra blank lines, renamed variables
      SUBROUTINE AX(M,Y)

      REAL Y(*)
      INTEGER J,M
      DO J = 1,M
         Y(J) = Y(J) + 1.0
      ENDDO
      RETURN
      END
`)
	if Func(a) != Func(b) {
		t.Fatal("formatting/renaming changed the IR digest")
	}
	c := compile(`
      SUBROUTINE AX(N,X)
      REAL X(*)
      INTEGER I,N
      DO I = 1,N
         X(I) = X(I) + 2.0
      ENDDO
      RETURN
      END
`)
	if Func(a) == Func(c) {
		t.Fatal("different constant, same IR digest")
	}
}

func TestCombineDomainSeparates(t *testing.T) {
	var a, b Key
	a[0], b[0] = 1, 2
	if Combine("t", a, b) == Combine("t", b, a) {
		t.Fatal("Combine is order-insensitive")
	}
	if Combine("t1", a) == Combine("t2", a) {
		t.Fatal("Combine ignores the domain tag")
	}
}

// compileOne compiles a single-routine source via the public
// compiler entry point (no import cycle: the root package does not
// import cachekey).
func compileOne(t *testing.T, src string) *ir.Func {
	t.Helper()
	prog, err := regalloc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.IR.Funcs) != 1 {
		t.Fatalf("want 1 unit, got %d", len(prog.IR.Funcs))
	}
	return prog.IR.Funcs[0]
}
