package ig

import (
	"reflect"
	"testing"

	"regalloc/internal/dataflow"
	"regalloc/internal/ir"
)

// legacyAdj is the pre-CSR adjacency representation: per-node append
// vectors fed by the same AddEdge stream. The CSR rows must be
// byte-identical to it — row order is what the simplify worklists
// tie-break on, so any divergence would silently change colorings.
type legacyAdj struct {
	class []ir.Class
	seen  map[uint64]bool
	adj   [][]int32
}

func newLegacyAdj(class []ir.Class) *legacyAdj {
	return &legacyAdj{class: class, seen: map[uint64]bool{}, adj: make([][]int32, len(class))}
}

func (l *legacyAdj) addEdge(a, b int32) {
	if a == b || l.class[a] != l.class[b] {
		return
	}
	k := edgeKey(a, b)
	if l.seen[k] {
		return
	}
	l.seen[k] = true
	l.adj[a] = append(l.adj[a], b)
	l.adj[b] = append(l.adj[b], a)
}

func requireMatchesLegacy(t *testing.T, g *Graph, l *legacyAdj, label string) {
	t.Helper()
	if g.NumEdges() != len(l.seen) {
		t.Fatalf("%s: edges %d != legacy %d", label, g.NumEdges(), len(l.seen))
	}
	for a := 0; a < g.NumNodes(); a++ {
		gn := g.Neighbors(int32(a))
		ln := l.adj[a]
		if len(gn) == 0 && len(ln) == 0 {
			continue
		}
		if !reflect.DeepEqual(gn, ln) {
			t.Fatalf("%s: node %d adjacency differs:\n csr    %v\n legacy %v", label, a, gn, ln)
		}
		if g.Degree(int32(a)) != len(ln) {
			t.Fatalf("%s: node %d degree %d != legacy %d", label, a, g.Degree(int32(a)), len(ln))
		}
	}
}

// TestCSRMatchesLegacyAdjacencyRandomStreams drives identical
// pseudo-random AddEdge streams (with duplicates, self edges, and
// cross-class pairs mixed in) into the CSR graph and the legacy
// model, at sizes on both sides of bitMatrixLimit so the bit-matrix
// and flat-set membership paths are both covered, interleaving
// queries so the lazy recompile path runs too.
func TestCSRMatchesLegacyAdjacencyRandomStreams(t *testing.T) {
	for _, n := range []int{1, 2, 37, 500, bitMatrixLimit, bitMatrixLimit + 1, 5000} {
		classes := make([]ir.Class, n)
		for i := range classes {
			if i%3 == 2 {
				classes[i] = ir.ClassFloat
			}
		}
		g := New(classes)
		l := newLegacyAdj(classes)
		s := uint64(n)*0x9E3779B97F4A7C15 + 1
		next := func() uint64 {
			s ^= s >> 12
			s ^= s << 25
			s ^= s >> 27
			return s * 0x2545F4914F6CDD1D
		}
		edges := 6 * n
		for i := 0; i < edges; i++ {
			a := int32(next() % uint64(n))
			b := int32(next() % uint64(n))
			g.AddEdge(a, b)
			l.addEdge(a, b)
			if g.Interfere(a, b) != (a != b && classes[a] == classes[b]) {
				t.Fatalf("n=%d: Interfere(%d,%d) disagrees with AddEdge contract", n, a, b)
			}
			if i == edges/2 {
				// Query mid-stream: the CSR recompiles and further
				// AddEdges must still land in log order.
				_ = g.Neighbors(a)
			}
		}
		requireMatchesLegacy(t, g, l, "random stream")
	}
}

// TestCSRMatchesLegacyAdjacencyOnCorpus replays the real builder's
// enumeration stream — the same candidate edges BuildWithLiveness
// inserts, in the same order — into the legacy model and checks the
// CSR graph against it on generated functions.
func TestCSRMatchesLegacyAdjacencyOnCorpus(t *testing.T) {
	for _, size := range []int{40, 300, 900} {
		f := giantBlock(t, size)
		lv := dataflow.ComputeLiveness(f)
		g := BuildWithLiveness(f, lv, 1, nil)
		classes := make([]ir.Class, f.NumRegs())
		for i := range classes {
			classes[i] = f.RegClass(ir.Reg(i))
		}
		l := newLegacyAdj(classes)
		for bi := range f.Blocks {
			enumeratePiece(f, lv, wholeBlock(f, bi), func(d, lr int32) {
				l.addEdge(d, lr)
			})
		}
		requireMatchesLegacy(t, g, l, "corpus build")
	}
}

// TestMaxDegree pins the one-pass max-degree helper against the
// per-node scan it replaces.
func TestMaxDegree(t *testing.T) {
	classes := make([]ir.Class, 200)
	g := New(classes)
	s := uint64(99)
	for i := 0; i < 900; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		g.AddEdge(int32(s%200), int32((s>>16)%200))
	}
	want := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(int32(v)); d > want {
			want = d
		}
	}
	if got := g.MaxDegree(); got != want {
		t.Fatalf("MaxDegree = %d, want %d", got, want)
	}
}

// TestEdgeSetBasics covers the flat membership set directly: growth
// across several doublings, duplicate rejection, and absent-key
// lookups.
func TestEdgeSetBasics(t *testing.T) {
	var s edgeSet
	const n = 10_000
	for i := 1; i <= n; i++ {
		k := edgeKey(int32(i%1000), int32(i))
		if i%1000 == i {
			continue // self edge keys never occur; skip
		}
		if !s.insert(k) {
			t.Fatalf("insert(%d) reported duplicate on first insert", k)
		}
		if s.insert(k) {
			t.Fatalf("insert(%d) accepted a duplicate", k)
		}
		if !s.has(k) {
			t.Fatalf("has(%d) = false after insert", k)
		}
	}
	if s.has(edgeKey(123456, 654321)) {
		t.Fatal("has reported an absent key")
	}
}
