package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"regalloc/internal/fsutil"
	"regalloc/internal/reqtrace"
)

// Flight-recorder bounds: enough residents to hold a load test's slow
// tail and error burst, small enough that /debug/requests stays a
// quick read.
const (
	recorderSlowCap = 64
	recorderErrCap  = 64
)

// traced wraps an allocation handler with request-scoped tracing:
// parse the client's W3C traceparent (minting a fresh trace when the
// header is absent or malformed, continuing the trace with a child
// span ID when it is valid), thread the trace through the request
// context, and on completion feed the flight recorder, the
// exemplar-linked latency histogram, and the access log. The
// response carries a traceparent header naming the server's span so
// the caller can correlate.
func (s *server) traced(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sc, err := reqtrace.Parse(r.Header.Get("traceparent"))
		if err != nil {
			sc = reqtrace.Mint()
		} else {
			sc = sc.Child()
		}
		rt := reqtrace.NewTrace(sc)
		root, endRoot := rt.StartSpan(0, "request")
		rt.Annotate("path", r.URL.Path)
		ctx := reqtrace.ContextWith(r.Context(), rt, root)
		w.Header().Set("traceparent", sc.Header())
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}

		start := rt.Start()
		h(sw, r.WithContext(ctx))
		dur := time.Since(start)
		endRoot(reqtrace.Attr{Key: "status", Value: strconv.Itoa(sw.status)})

		spans, annots := rt.Snapshot()
		rec := reqtrace.RequestRecord{
			TraceID: sc.TraceID.String(),
			Start:   start,
			DurNS:   dur.Nanoseconds(),
			Status:  sw.status,
			Error:   sw.status >= 400,
			Annots:  annots,
			Spans:   spans,
		}
		s.recorder.Add(rec)
		s.reqLat.Observe(dur, rec.TraceID, start)
		s.access.log(&rec, r.Method)
	}
}

// statusWriter captures the status code a handler writes; an
// unwritten header means the implicit 200.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// handleDebugRequests is GET /debug/requests: the flight recorder's
// retained span trees — errors newest first, then the slowest
// successes — as indented JSON. This is the trace store a latency
// exemplar or an access-log line points into.
func (s *server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, failf(http.StatusMethodNotAllowed, codeMethodNotAllowed, "GET the retained request traces"))
		return
	}
	writeJSON(w, struct {
		Requests []reqtrace.RequestRecord `json:"requests"`
	}{s.recorder.Snapshot()})
}

// accessEntry is one structured access-log line: identity and outcome
// on the first level, allocation annotations when the request ran
// one. The trace_id field joins the line to /debug/requests and to
// the exemplar on the latency histogram.
type accessEntry struct {
	Time           string `json:"time"`
	TraceID        string `json:"trace_id"`
	Method         string `json:"method"`
	Path           string `json:"path"`
	Status         int    `json:"status"`
	DurNS          int64  `json:"dur_ns"`
	Unit           string `json:"unit,omitempty"`
	Heuristic      string `json:"heuristic,omitempty"`
	Cache          string `json:"cache,omitempty"`
	SpillCostMilli int64  `json:"spill_cost_milli,omitempty"`
	Error          bool   `json:"error,omitempty"`
}

// accessLog writes one JSON line per completed allocation request
// through a buffered writer. All methods are nil-safe — a server
// without -access-log carries a nil log and pays one pointer check
// per request. Close flushes and fsyncs, so a drained shutdown's last
// line is durable before the process exits.
type accessLog struct {
	mu sync.Mutex
	bw *bufio.Writer
	f  *os.File
}

func newAccessLog(path string) (*accessLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &accessLog{bw: bufio.NewWriter(f), f: f}, nil
}

func (l *accessLog) log(rec *reqtrace.RequestRecord, method string) {
	if l == nil {
		return
	}
	e := accessEntry{
		Time:      rec.Start.UTC().Format(time.RFC3339Nano),
		TraceID:   rec.TraceID,
		Method:    method,
		Path:      rec.Annotation("path"),
		Status:    rec.Status,
		DurNS:     rec.DurNS,
		Unit:      rec.Annotation("unit"),
		Heuristic: rec.Annotation("heuristic"),
		Cache:     rec.Annotation("cache"),
		Error:     rec.Error,
	}
	if v := rec.Annotation("spill_cost_milli"); v != "" {
		e.SpillCostMilli, _ = strconv.ParseInt(v, 10, 64)
	}
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	l.mu.Lock()
	l.bw.Write(line)
	l.bw.WriteByte('\n')
	l.mu.Unlock()
}

// Close flushes buffered lines and syncs the file to disk before
// closing it — the drain path calls this after Shutdown returns, so
// the line for the last in-flight request is on disk when the
// process exits.
func (l *accessLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.bw.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return fsutil.SyncClose(l.f)
}
