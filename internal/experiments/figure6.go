package experiments

import (
	"fmt"
	"strings"

	"regalloc"
	"regalloc/internal/asm"
	"regalloc/internal/workloads"
)

// Fig6Row is one register-count line of the quicksort study.
type Fig6Row struct {
	K          int
	SpilledOld int
	SpilledNew int
	SpillPct   float64
	CostOld    float64
	CostNew    float64
	CostPct    float64
	SizeOld    int
	SizeNew    int
	SizePct    float64
	CyclesOld  uint64
	CyclesNew  uint64
	TimePct    float64
}

// Figure6Result is the full quicksort table.
type Figure6Result struct {
	Elements int64
	Rows     []Fig6Row
}

// Figure6 regenerates the paper's Figure 6: quicksort compiled with
// each heuristic and with the allocator restricted to 16, 14, 12,
// 10, and 8 general-purpose registers, reporting spills, estimated
// spill cost, object size, and simulated running time for sorting
// the given number of integers (the paper used 200,000).
func Figure6(elements int64) (*Figure6Result, error) {
	w := workloads.Quicksort()
	prog, err := regalloc.Compile(w.Source)
	if err != nil {
		return nil, fmt.Errorf("figure6: compile: %w", err)
	}
	out := &Figure6Result{Elements: elements}
	for _, k := range []int{16, 14, 12, 10, 8} {
		machine := regalloc.RTPC().WithGPR(k)
		row := Fig6Row{K: k}

		type side struct {
			spills int
			cost   float64
			size   int
			cycles uint64
			digest uint64
		}
		run := func(h regalloc.Heuristic) (side, error) {
			var s side
			opt := defaultOptions()
			opt.Heuristic = h
			opt.KInt = k
			res, err := prog.Allocate("QSORT", opt)
			if err != nil {
				return s, err
			}
			s.spills = res.FirstPassSpilled()
			s.cost = res.FirstPassSpillCost()
			lowered, err := asm.Lower(res.Func, res.Colors, machine)
			if err != nil {
				return s, err
			}
			s.size = lowered.ObjectSize()
			eng, err := NewVMEngine(prog, h, machine)
			if err != nil {
				return s, err
			}
			s.digest, err = RunQuicksortN(eng, elements)
			if err != nil {
				return s, err
			}
			s.cycles = eng.M.Cycles
			return s, nil
		}
		oldS, err := run(regalloc.Chaitin)
		if err != nil {
			return nil, fmt.Errorf("figure6: k=%d chaitin: %w", k, err)
		}
		newS, err := run(regalloc.Briggs)
		if err != nil {
			return nil, fmt.Errorf("figure6: k=%d briggs: %w", k, err)
		}
		if oldS.digest != newS.digest {
			return nil, fmt.Errorf("figure6: k=%d: allocators disagree on sorted output", k)
		}
		row.SpilledOld, row.SpilledNew = oldS.spills, newS.spills
		row.SpillPct = pct(float64(oldS.spills), float64(newS.spills))
		row.CostOld, row.CostNew = oldS.cost, newS.cost
		row.CostPct = pct(oldS.cost, newS.cost)
		row.SizeOld, row.SizeNew = oldS.size, newS.size
		row.SizePct = pct(float64(oldS.size), float64(newS.size))
		row.CyclesOld, row.CyclesNew = oldS.cycles, newS.cycles
		row.TimePct = pct(float64(oldS.cycles), float64(newS.cycles))
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// String renders the table in the paper's layout, with simulated
// cycles standing in for wall-clock seconds.
func (r *Figure6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "quicksort, %d elements (running time in simulated cycles)\n", r.Elements)
	fmt.Fprintf(&b, "%4s | %5s %5s %4s | %9s %9s %4s | %6s %6s %4s | %11s %11s %4s\n",
		"Regs", "Old", "New", "Pct", "Old", "New", "Pct", "Old", "New", "Pct", "Old", "New", "Pct")
	fmt.Fprintf(&b, "%4s | %16s | %24s | %18s | %28s\n",
		"", "Registers Spilled", "Spill Cost", "Object Size", "Running Time")
	b.WriteString(strings.Repeat("-", 112) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%4d | %5d %5d %4.0f | %9.0f %9.0f %4.0f | %6d %6d %4.0f | %11d %11d %4.0f\n",
			row.K,
			row.SpilledOld, row.SpilledNew, row.SpillPct,
			row.CostOld, row.CostNew, row.CostPct,
			row.SizeOld, row.SizeNew, row.SizePct,
			row.CyclesOld, row.CyclesNew, row.TimePct)
	}
	return b.String()
}
