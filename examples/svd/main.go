// SVD: the paper's motivating example (§1.2, §3). Compiles the
// singular value decomposition routine, compares the two coloring
// heuristics statically, then runs both compilations on the
// simulated RT/PC and reports cycle counts and the computed singular
// values.
//
// Run with: go run ./examples/svd
package main

import (
	"fmt"
	"log"
	"sort"

	"regalloc"
	"regalloc/internal/vm"
	"regalloc/internal/workloads"
)

func main() {
	w := workloads.SVD()
	prog, err := regalloc.Compile(w.Source)
	if err != nil {
		log.Fatal(err)
	}

	// Static comparison on the paper's machine (16 GPR + 8 FPR).
	fmt.Println("static allocation of SVD:")
	for _, h := range []regalloc.Heuristic{regalloc.Chaitin, regalloc.Briggs} {
		opt := regalloc.DefaultOptions()
		opt.Heuristic = h
		res, err := prog.Allocate("SVD", opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s live ranges=%d  spilled(first pass)=%d  est. spill cost=%.0f  passes=%d\n",
			h, res.LiveRanges(), res.FirstPassSpilled(), res.FirstPassSpillCost(), len(res.Passes))
	}

	// Dynamic comparison: decompose a deterministic 12x8 matrix.
	const (
		nm, m, n = 12, 12, 8
		aBase    = int64(0)
		wBase    = 1000
		uBase    = 2000
		vBase    = 3000
		ierr     = 4000
		rv1      = 4100
	)
	fmt.Printf("\ndecomposing a %dx%d matrix on the simulator:\n", m, n)
	for _, h := range []regalloc.Heuristic{regalloc.Chaitin, regalloc.Briggs} {
		opt := regalloc.DefaultOptions()
		opt.Heuristic = h
		code, _, err := prog.Assemble(regalloc.RTPC(), opt)
		if err != nil {
			log.Fatal(err)
		}
		machine := regalloc.NewVM(code, prog.MemWords())
		// A(i,j) = 1/(i+j-1), the Hilbert matrix: well-known singular
		// values, brutally ill-conditioned.
		for j := 1; j <= n; j++ {
			for i := 1; i <= m; i++ {
				machine.StoreFloat(aBase+int64(i-1)+int64(j-1)*nm, 1.0/float64(i+j-1))
			}
		}
		_, err = machine.Call("SVD",
			vm.Int(nm), vm.Int(m), vm.Int(n), vm.Int(aBase),
			vm.Int(wBase), vm.Int(uBase), vm.Int(vBase), vm.Int(ierr), vm.Int(rv1))
		if err != nil {
			log.Fatal(err)
		}
		sv := make([]float64, n)
		for i := 0; i < n; i++ {
			sv[i] = machine.LoadFloat(wBase + int64(i))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(sv)))
		fmt.Printf("  %-12s %12d cycles   largest sigma = %.6f  (ierr=%d)\n",
			h, machine.Cycles, sv[0], machine.LoadInt(ierr))
	}
}
