package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"regalloc/internal/obs"
)

// TestNilTracerIsSafe: every Tracer method must be a no-op on the
// nil tracer — that is the zero-overhead-when-unobserved contract.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *obs.Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.SetPass(3)
	tr.BeginPhase(obs.PhaseBuild)
	tr.EndPhase(obs.PhaseBuild, time.Millisecond)
	tr.Counter(obs.PhaseBuild, "graph.nodes", 7)
	tr.SpillDecision(1, 9, 40, 4.4)
	tr.ColorReuse(1, 9, 3, 2)
	if obs.New(nil, "unit") != nil {
		t.Fatal("New(nil, ...) must return the nil tracer")
	}
}

// TestTracerStampsContext: events carry the unit name and the pass
// set via SetPass.
func TestTracerStampsContext(t *testing.T) {
	var got []obs.Event
	sink := sinkFunc(func(e obs.Event) { got = append(got, e) })
	tr := obs.New(sink, "SVD")
	tr.BeginPhase(obs.PhaseBuild)
	tr.SetPass(2)
	tr.EndPhase(obs.PhaseSimplify, 5*time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("got %d events", len(got))
	}
	if got[0].Unit != "SVD" || got[0].Pass != 0 || got[0].Kind != obs.KindSpanBegin {
		t.Fatalf("event 0: %+v", got[0])
	}
	if got[1].Pass != 2 || got[1].Dur != 5*time.Millisecond || got[1].Phase != obs.PhaseSimplify {
		t.Fatalf("event 1: %+v", got[1])
	}
	if got[1].Time.IsZero() {
		t.Fatal("event time not stamped")
	}
}

type sinkFunc func(obs.Event)

func (f sinkFunc) Emit(e obs.Event) { f(e) }

// TestJSONSink: one valid JSON object per line, with the
// kind-appropriate fields present.
func TestJSONSink(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.New(obs.NewJSONSink(&buf), "QSORT")
	tr.SetPass(1)
	tr.BeginPhase(obs.PhaseSimplify)
	tr.EndPhase(obs.PhaseSimplify, 1500*time.Nanosecond)
	tr.Counter(obs.PhaseBuild, "graph.edges", 42)
	tr.SpillDecision(7, 12, 80, 6.67)
	tr.ColorReuse(9, 20, 4, 5)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	var evs []map[string]any
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("invalid JSON line %q: %v", ln, err)
		}
		if m["unit"] != "QSORT" || m["pass"] != float64(1) {
			t.Fatalf("context not stamped: %v", m)
		}
		evs = append(evs, m)
	}
	if evs[0]["kind"] != "span_begin" || evs[0]["phase"] != "simplify" {
		t.Fatalf("span_begin: %v", evs[0])
	}
	if evs[1]["kind"] != "span_end" || evs[1]["dur_ns"] != float64(1500) {
		t.Fatalf("span_end: %v", evs[1])
	}
	if evs[2]["name"] != "graph.edges" || evs[2]["value"] != float64(42) {
		t.Fatalf("counter: %v", evs[2])
	}
	if evs[3]["kind"] != "spill_decision" || evs[3]["node"] != float64(7) ||
		evs[3]["cost"] != float64(80) || evs[3]["metric"] != float64(6.67) {
		t.Fatalf("spill_decision: %v", evs[3])
	}
	if evs[4]["kind"] != "color_reuse" || evs[4]["in_use_colors"] != float64(4) ||
		evs[4]["color"] != float64(5) {
		t.Fatalf("color_reuse: %v", evs[4])
	}
}

// TestTextSink: lines mention the kind and the key quantities.
func TestTextSink(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.New(obs.NewTextSink(&buf), "FIB")
	tr.EndPhase(obs.PhaseColor, time.Millisecond)
	tr.SpillDecision(3, 8, 20, 2.5)
	out := buf.String()
	for _, want := range []string{"[FIB pass=0]", "span_end", "phase=color", "spill_decision", "node=3", "metric=2.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsSink: counters sum, histograms bucket, spill/reuse
// totals accumulate, and Snapshot is an isolated copy.
func TestMetricsSink(t *testing.T) {
	ms := obs.NewMetricsSink()
	tr := obs.New(ms, "U")
	tr.EndPhase(obs.PhaseBuild, 5*time.Microsecond)
	tr.EndPhase(obs.PhaseBuild, 50*time.Microsecond)
	tr.Counter(obs.PhaseBuild, "graph.nodes", 100)
	tr.Counter(obs.PhaseBuild, "graph.nodes", 20)
	tr.SpillDecision(1, 9, 30, 3.3)
	tr.SpillDecision(2, 9, 10, 1.1)
	tr.ColorReuse(1, 9, 2, 0)

	snap := ms.Snapshot()
	if snap.Counters["build/graph.nodes"] != 120 {
		t.Fatalf("counter sum: %v", snap.Counters)
	}
	h := snap.Durations["build"]
	if h.Count != 2 || h.Sum != 55*time.Microsecond || h.Max != 50*time.Microsecond {
		t.Fatalf("histogram: %+v", h)
	}
	if h.Buckets[1] != 1 || h.Buckets[2] != 1 { // <=10µs and <=100µs decades
		t.Fatalf("histogram buckets: %v", h.Buckets)
	}
	if snap.SpillDecisions != 2 || snap.SpillCost != 40 || snap.ColorReuses != 1 {
		t.Fatalf("totals: %+v", snap)
	}

	// The snapshot must not alias live state.
	tr.Counter(obs.PhaseBuild, "graph.nodes", 1)
	if snap.Counters["build/graph.nodes"] != 120 {
		t.Fatal("snapshot aliases the sink")
	}

	out := snap.String()
	for _, want := range []string{"build", "graph.nodes", "spill decisions: 2", "color reuses: 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestMulti: fan-out hits every sink; nils are dropped; all-nil
// collapses to nil so the fast path is preserved.
func TestMulti(t *testing.T) {
	var a, b int
	sa := sinkFunc(func(obs.Event) { a++ })
	sb := sinkFunc(func(obs.Event) { b++ })
	m := obs.Multi(sa, nil, sb)
	m.Emit(obs.Event{})
	if a != 1 || b != 1 {
		t.Fatalf("fan-out: a=%d b=%d", a, b)
	}
	if obs.Multi(nil, nil) != nil {
		t.Fatal("Multi(nil, nil) should be nil")
	}
	if s := obs.Multi(sa); s == nil {
		t.Fatal("Multi(one) should pass through")
	}
	// A typed nil (e.g. an unset optional *MetricsSink variable) is
	// non-nil as an interface; Multi must still drop it rather than
	// hand Emit a nil receiver.
	var typedNil *obs.MetricsSink
	if obs.Multi(typedNil) != nil {
		t.Fatal("Multi(typed nil) should be nil")
	}
	m = obs.Multi(sa, typedNil)
	m.Emit(obs.Event{})
	if a != 2 {
		t.Fatalf("typed nil dropped but live sink kept: a=%d", a)
	}
}

// TestSinksConcurrent exercises the provided sinks from many
// goroutines; run under -race this is the concurrency-safety check
// for the Assemble worker pool's shared Observer.
func TestSinksConcurrent(t *testing.T) {
	var buf bytes.Buffer
	ms := obs.NewMetricsSink()
	sink := obs.Multi(obs.NewJSONSink(&buf), obs.NewTextSink(new(bytes.Buffer)), ms)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr := obs.New(sink, "unit")
			for i := 0; i < 200; i++ {
				tr.SetPass(i)
				tr.BeginPhase(obs.PhaseBuild)
				tr.EndPhase(obs.PhaseBuild, time.Microsecond)
				tr.Counter(obs.PhaseBuild, "n", 1)
				tr.SpillDecision(int32(i), 4, 1, 0.25)
			}
		}(g)
	}
	wg.Wait()
	snap := ms.Snapshot()
	if snap.Counters["build/n"] != 1600 || snap.SpillDecisions != 1600 {
		t.Fatalf("lost events: %+v", snap)
	}
	// Interleaved writers must still produce one valid JSON doc per line.
	for _, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("corrupt line %q: %v", ln, err)
		}
	}
}
