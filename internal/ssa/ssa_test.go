package ssa_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"regalloc/internal/alloc"
	"regalloc/internal/color"
	"regalloc/internal/fuzzgen"
	"regalloc/internal/ir"
	"regalloc/internal/irgen"
	"regalloc/internal/parser"
	"regalloc/internal/sem"
	"regalloc/internal/spill"
	"regalloc/internal/ssa"
	"regalloc/internal/workloads"
)

// compileAll compiles src and returns every function in it.
func compileAll(t *testing.T, src string) []*ir.Func {
	t.Helper()
	astProg, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(astProg)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	prog, err := irgen.Gen(astProg, info, irgen.DefaultStaticStart)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	return prog.Funcs
}

// corpusFuncs is every routine of the paper's workload corpus plus
// the quicksort and integer-kernel studies.
func corpusFuncs(t *testing.T) []*ir.Func {
	t.Helper()
	var fns []*ir.Func
	for _, w := range workloads.All() {
		fns = append(fns, compileAll(t, w.Source)...)
	}
	fns = append(fns, compileAll(t, workloads.Quicksort().Source)...)
	fns = append(fns, compileAll(t, workloads.IntegerKernels().Source)...)
	return fns
}

// checkPEO asserts that the dominance definition order is the
// reverse of a perfect elimination order of the interference graph:
// for every value, its neighbors defined earlier in dominance order
// must form a clique (the simplicial-vertex property, the witness of
// chordality that makes the greedy colorer optimal).
func checkPEO(t *testing.T, name string, a *ssa.Analysis) {
	t.Helper()
	pos := make(map[ir.Reg]int, len(a.Order))
	for i, r := range a.Order {
		pos[r] = i
	}
	var earlier []int32
	for _, r := range a.Order {
		earlier = earlier[:0]
		for _, nb := range a.G.Neighbors(int32(r)) {
			if p, ok := pos[ir.Reg(nb)]; ok && p < pos[r] {
				earlier = append(earlier, nb)
			}
		}
		for i := 0; i < len(earlier); i++ {
			for j := i + 1; j < len(earlier); j++ {
				if !a.G.Interfere(earlier[i], earlier[j]) {
					t.Fatalf("%s: dominance order is not a reverse PEO: v%d's earlier neighbors v%d and v%d do not interfere",
						name, r, earlier[i], earlier[j])
				}
			}
		}
	}
}

// checkExactColors colors with a palette of exactly MAXLIVE per
// class (so no spilling can be needed) and asserts the greedy
// colorer uses every one of them and no more.
func checkExactColors(t *testing.T, name string, s *ssa.Func, a *ssa.Analysis) {
	t.Helper()
	kInt, kFloat := a.MaxLive[ir.ClassInt], a.MaxLive[ir.ClassFloat]
	if kInt == 0 {
		kInt = 1
	}
	if kFloat == 0 {
		kFloat = 1
	}
	colors, err := ssa.Color(s, a, color.NumColors(kInt, kFloat))
	if err != nil {
		t.Fatalf("%s: coloring with the MAXLIVE palette failed: %v", name, err)
	}
	var used [ir.NumClasses]map[int16]bool
	for c := range used {
		used[c] = make(map[int16]bool)
	}
	for _, r := range a.Order {
		used[s.F.RegClass(r)][colors[r]] = true
	}
	if got := len(used[ir.ClassInt]); got != a.MaxLive[ir.ClassInt] {
		t.Fatalf("%s: greedy used %d int colors, want exactly MAXLIVE=%d", name, got, a.MaxLive[ir.ClassInt])
	}
	if got := len(used[ir.ClassFloat]); got != a.MaxLive[ir.ClassFloat] {
		t.Fatalf("%s: greedy used %d float colors, want exactly MAXLIVE=%d", name, got, a.MaxLive[ir.ClassFloat])
	}
}

func construct(t *testing.T, f *ir.Func) (*ssa.Func, *ssa.Analysis) {
	t.Helper()
	s, err := ssa.Construct(f.Clone())
	if err != nil {
		t.Fatalf("%s: construct: %v", f.Name, err)
	}
	return s, ssa.Analyze(s)
}

// TestChordalityCorpus is the chordality property over the full
// workload corpus: dominance order is a reverse perfect elimination
// order, and greedy coloring uses exactly MAXLIVE colors.
func TestChordalityCorpus(t *testing.T) {
	for _, f := range corpusFuncs(t) {
		s, a := construct(t, f)
		checkPEO(t, f.Name, a)
		checkExactColors(t, f.Name, s, a)
	}
}

// TestChordalityFuzzgen runs the same property over 100 generated
// programs — the acceptance bar of the chordality satellite.
func TestChordalityFuzzgen(t *testing.T) {
	for seed := uint64(1); seed <= 100; seed++ {
		src := fuzzgen.Generate(seed, fuzzgen.Config{})
		for _, f := range compileAll(t, src) {
			name := fmt.Sprintf("seed%d/%s", seed, f.Name)
			s, a := construct(t, f)
			checkPEO(t, name, a)
			checkExactColors(t, name, s, a)
		}
	}
}

// TestAllocateCorpus runs the full pipeline at the paper's machine
// size and checks the result with the independent program-level
// verifier plus the IR structural validator.
func TestAllocateCorpus(t *testing.T) {
	k := color.NumColors(16, 8)
	for _, f := range corpusFuncs(t) {
		res, err := ssa.Allocate(context.Background(), f.Clone(), k, spill.DefaultCostParams(), nil)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if err := ir.Validate(res.Func); err != nil {
			t.Fatalf("%s: lowered function is structurally invalid: %v", f.Name, err)
		}
		if err := alloc.VerifyAssignment(res.Func, res.Colors); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
	}
}

// TestAllocateUnderPressure squeezes the corpus through small
// register files, forcing the pre-spill phase and the copy
// sequentializer (including cycle breaks) to run, and re-verifies.
func TestAllocateUnderPressure(t *testing.T) {
	for _, kk := range [][2]int{{8, 4}, {5, 3}, {4, 2}} {
		k := color.NumColors(kk[0], kk[1])
		for _, f := range corpusFuncs(t) {
			res, err := ssa.Allocate(context.Background(), f.Clone(), k, spill.DefaultCostParams(), nil)
			if errors.Is(err, ssa.ErrIrreducible) && kk[0] <= 4 {
				// A few LINPACK/SIMPLEX calls read five distinct int
				// operands, which no spilling fits into four registers;
				// the Chaitin path fails these the same way ("a spill
				// temporary must itself spill").
				continue
			}
			if err != nil {
				t.Fatalf("%s at k=%v: %v", f.Name, kk, err)
			}
			if res.Stats.MaxLiveInt > kk[0] || res.Stats.MaxLiveFloat > kk[1] {
				t.Fatalf("%s at k=%v: pre-spill left MAXLIVE at (%d,%d)",
					f.Name, kk, res.Stats.MaxLiveInt, res.Stats.MaxLiveFloat)
			}
			if err := ir.Validate(res.Func); err != nil {
				t.Fatalf("%s at k=%v: %v", f.Name, kk, err)
			}
			if err := alloc.VerifyAssignment(res.Func, res.Colors); err != nil {
				t.Fatalf("%s at k=%v: %v", f.Name, kk, err)
			}
		}
	}
}

// TestPreSpillIdleWhenPressureFits pins the decoupling guarantee:
// with MAXLIVE within the budget, the spill phase must not touch the
// program (zero-spill units stay zero-spill by construction).
func TestPreSpillIdleWhenPressureFits(t *testing.T) {
	for _, f := range corpusFuncs(t) {
		s, a := construct(t, f)
		kInt, kFloat := a.MaxLive[ir.ClassInt], a.MaxLive[ir.ClassFloat]
		if kInt == 0 {
			kInt = 1
		}
		if kFloat == 0 {
			kFloat = 1
		}
		res, err := ssa.Allocate(context.Background(), f.Clone(), color.NumColors(kInt, kFloat), spill.DefaultCostParams(), nil)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if n := res.Stats.TotalSpilled(); n != 0 {
			t.Fatalf("%s: spilled %d values although MAXLIVE fits the budget", f.Name, n)
		}
		_ = s
	}
}
