package spill

import "regalloc/internal/ir"

// Rematerialization implements the refinement Chaitin's papers
// describe for "never-killed" values (the paper's footnote 3 points
// at these refinements): a live range whose every definition loads
// the same constant need not be stored to memory and reloaded — the
// constant can simply be recomputed before each use. Such ranges are
// cheaper to spill (no stores, and a constant load is cheaper than a
// memory load), which changes both the cost estimate and the
// inserted code.

// RematValue describes how to recompute a rematerializable range.
type RematValue struct {
	Cls  ir.Class
	Imm  int64
	FImm float64
}

// Remat returns, for each register of f, whether the range is
// rematerializable and with what value. A range qualifies when all
// of its definitions are OpConst instructions producing the same
// constant.
func Remat(f *ir.Func) ([]bool, []RematValue) {
	ok := make([]bool, f.NumRegs())
	vals := make([]RematValue, f.NumRegs())
	seen := make([]bool, f.NumRegs())
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			d := in.Def()
			if d == ir.NoReg {
				continue
			}
			v := RematValue{Cls: f.RegClass(d), Imm: in.Imm, FImm: in.FImm}
			switch {
			case in.Op != ir.OpConst:
				ok[d] = false
				seen[d] = true
			case !seen[d]:
				ok[d] = true
				vals[d] = v
				seen[d] = true
			case ok[d] && vals[d] != v:
				ok[d] = false
			}
		}
	}
	// A register never defined (entry pseudo-def) is not
	// rematerializable.
	for r := range ok {
		if !seen[r] {
			ok[r] = false
		}
	}
	return ok, vals
}

// CostsRemat is Costs with rematerialization awareness: a
// rematerializable range pays nothing at its definitions (no store
// is needed) and only a 1-cycle constant load per use.
func CostsRemat(f *ir.Func, p CostParams, remat []bool) []float64 {
	costs := Costs(f, p)
	if remat == nil {
		return costs
	}
	// Recompute the rematerializable entries from scratch — but a
	// spill temporary keeps its infinite cost even when it happens
	// to hold a constant: re-spilling a one-use reload/recompute
	// temp would regenerate the identical range forever.
	cheapen := func(r int) bool {
		return r < len(remat) && remat[r] && f.RegFlags(ir.Reg(r))&ir.FlagSpillTemp == 0
	}
	for r := range costs {
		if cheapen(r) {
			costs[r] = 0
		}
	}
	var ubuf []ir.Reg
	for _, b := range f.Blocks {
		w := pow(p.DepthBase, b.Depth)
		for i := range b.Instrs {
			ubuf = b.Instrs[i].AppendUses(ubuf[:0])
			for _, u := range ubuf {
				if cheapen(int(u)) {
					costs[u] += w // one const instruction per use
				}
			}
		}
	}
	return costs
}

func pow(base float64, n int) float64 {
	v := 1.0
	for ; n > 0; n-- {
		v *= base
	}
	return v
}

// InsertCodeRemat extends InsertCode: registers in spilled that are
// rematerializable (per remat/vals) get no slot and no stores; each
// use is preceded by a fresh constant load instead of a memory
// reload. Other registers spill normally.
func InsertCodeRemat(f *ir.Func, spilled []ir.Reg, remat []bool, vals []RematValue) Stats {
	var st Stats
	slot := make(map[ir.Reg]int64)
	rem := make(map[ir.Reg]RematValue)
	for _, r := range spilled {
		if remat != nil && int(r) < len(remat) && remat[r] {
			rem[r] = vals[r]
			continue
		}
		slot[r] = f.NewSlot()
		st.Slots++
	}

	for _, b := range f.Blocks {
		out := make([]ir.Instr, 0, len(b.Instrs))
		for i := range b.Instrs {
			in := b.Instrs[i]

			var reloaded map[ir.Reg]ir.Reg
			reload := func(u ir.Reg) ir.Reg {
				if u == ir.NoReg {
					return u
				}
				if t, ok := reloaded[u]; ok {
					return t
				}
				if v, isRemat := rem[u]; isRemat {
					t := f.NewSpillTemp(v.Cls)
					out = append(out, ir.Instr{Op: ir.OpConst, Dst: t, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: v.Imm, FImm: v.FImm})
					st.Remats++
					if reloaded == nil {
						reloaded = make(map[ir.Reg]ir.Reg, 2)
					}
					reloaded[u] = t
					return t
				}
				s, isSpilled := slot[u]
				if !isSpilled {
					return u
				}
				t := f.NewSpillTemp(f.RegClass(u))
				out = append(out, ir.Instr{Op: ir.OpSpillLoad, Dst: t, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: s})
				st.Loads++
				if reloaded == nil {
					reloaded = make(map[ir.Reg]ir.Reg, 2)
				}
				reloaded[u] = t
				return t
			}
			in.A = reload(in.A)
			in.B = reload(in.B)
			in.C = reload(in.C)
			for j, a := range in.Args {
				in.Args[j] = reload(a)
			}

			if d := in.Def(); d != ir.NoReg {
				if _, isRemat := rem[d]; isRemat {
					// The definition is a constant load whose value
					// is recomputed at each use: drop it entirely.
					continue
				}
				if s, isSpilled := slot[d]; isSpilled {
					t := f.NewSpillTemp(f.RegClass(d))
					in.Dst = t
					out = append(out, in)
					out = append(out, ir.Instr{Op: ir.OpSpillStore, Dst: ir.NoReg, A: t, B: ir.NoReg, C: ir.NoReg, Imm: s})
					st.Stores++
					continue
				}
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	return st
}
