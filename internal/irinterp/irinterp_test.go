package irinterp_test

import (
	"math"
	"strings"
	"testing"

	"regalloc/internal/ir"
	"regalloc/internal/irinterp"
)

// prog wraps a single hand-built function.
func prog(f *ir.Func) *ir.Program {
	p := ir.NewProgram(0)
	p.Add(f)
	return p
}

func TestScalarOps(t *testing.T) {
	f := &ir.Func{Name: "F"}
	a := f.NewReg(ir.ClassInt)
	b := f.NewReg(ir.ClassInt)
	c := f.NewReg(ir.ClassInt)
	f.Params = []ir.Reg{a, b}
	blk := f.NewBlock()
	blk.Instrs = []ir.Instr{
		{Op: ir.OpParam, Dst: a, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 0},
		{Op: ir.OpParam, Dst: b, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1},
		{Op: ir.OpMul, Dst: c, A: a, B: b, C: ir.NoReg},
		{Op: ir.OpAddI, Dst: c, A: c, B: ir.NoReg, C: ir.NoReg, Imm: -3},
		{Op: ir.OpRet, Dst: ir.NoReg, A: c, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	it := irinterp.New(prog(f), 64)
	v, err := it.Call("F", irinterp.Int(6), irinterp.Int(7))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 39 {
		t.Fatalf("got %d", v.I)
	}
	if it.Steps == 0 {
		t.Fatal("steps not counted")
	}
}

func TestFloatAndMemory(t *testing.T) {
	f := &ir.Func{Name: "F"}
	addr := f.NewReg(ir.ClassInt)
	x := f.NewReg(ir.ClassFloat)
	f.Params = []ir.Reg{addr}
	blk := f.NewBlock()
	blk.Instrs = []ir.Instr{
		{Op: ir.OpParam, Dst: addr, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 0},
		{Op: ir.OpLoad, Dst: x, A: ir.NoReg, B: addr, C: ir.NoReg, Imm: 0},
		{Op: ir.OpFSqrt, Dst: x, A: x, B: ir.NoReg, C: ir.NoReg},
		{Op: ir.OpStore, Dst: ir.NoReg, A: x, B: addr, C: ir.NoReg, Imm: 1},
		{Op: ir.OpRet, Dst: ir.NoReg, A: x, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	it := irinterp.New(prog(f), 64)
	it.StoreFloat(10, 2.25)
	v, err := it.Call("F", irinterp.Int(10))
	if err != nil {
		t.Fatal(err)
	}
	if v.F != 1.5 || it.LoadFloat(11) != 1.5 {
		t.Fatalf("sqrt path wrong: %g / %g", v.F, it.LoadFloat(11))
	}
}

func TestStepLimit(t *testing.T) {
	f := &ir.Func{Name: "SPIN"}
	b := f.NewBlock()
	b.Instrs = []ir.Instr{{Op: ir.OpBr, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg}}
	b.Succs = []int{0}
	f.RecomputePreds()
	it := irinterp.New(prog(f), 64)
	it.MaxSteps = 500
	if _, err := it.Call("SPIN"); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("want step-limit error, got %v", err)
	}
}

func TestAddressFault(t *testing.T) {
	f := &ir.Func{Name: "BAD"}
	a := f.NewReg(ir.ClassInt)
	b := f.NewBlock()
	b.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: a, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1 << 40},
		{Op: ir.OpLoad, Dst: a, A: ir.NoReg, B: a, C: ir.NoReg},
		{Op: ir.OpRet, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	it := irinterp.New(prog(f), 64)
	if _, err := it.Call("BAD"); err == nil || !strings.Contains(err.Error(), "address") {
		t.Fatalf("want address fault, got %v", err)
	}
}

func TestDivModByZero(t *testing.T) {
	for _, op := range []ir.Op{ir.OpDiv, ir.OpMod} {
		f := &ir.Func{Name: "Z"}
		a := f.NewReg(ir.ClassInt)
		z := f.NewReg(ir.ClassInt)
		b := f.NewBlock()
		b.Instrs = []ir.Instr{
			{Op: ir.OpConst, Dst: a, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 5},
			{Op: ir.OpConst, Dst: z, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 0},
			{Op: op, Dst: a, A: a, B: z, C: ir.NoReg},
			{Op: ir.OpRet, Dst: ir.NoReg, A: a, B: ir.NoReg, C: ir.NoReg},
		}
		f.RecomputePreds()
		it := irinterp.New(prog(f), 64)
		if _, err := it.Call("Z"); err == nil {
			t.Fatalf("%v by zero must fault", op)
		}
	}
}

func TestSpillOps(t *testing.T) {
	f := &ir.Func{Name: "SP", StaticBase: 32, StaticSize: 4}
	x := f.NewReg(ir.ClassFloat)
	y := f.NewReg(ir.ClassFloat)
	slot := f.NewSlot()
	b := f.NewBlock()
	b.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: x, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, FImm: 6.5},
		{Op: ir.OpSpillStore, Dst: ir.NoReg, A: x, B: ir.NoReg, C: ir.NoReg, Imm: slot},
		{Op: ir.OpSpillLoad, Dst: y, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: slot},
		{Op: ir.OpRet, Dst: ir.NoReg, A: y, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	it := irinterp.New(prog(f), 64)
	v, err := it.Call("SP")
	if err != nil {
		t.Fatal(err)
	}
	if v.F != 6.5 {
		t.Fatalf("spill roundtrip: %g", v.F)
	}
	// The slot lives at StaticBase + StaticSize + slot.
	if it.LoadFloat(36) != 6.5 {
		t.Fatal("slot address wrong")
	}
}

func TestCallBetweenFunctions(t *testing.T) {
	callee := &ir.Func{Name: "SQ", HasRet: true, RetCls: ir.ClassFloat}
	cx := callee.NewReg(ir.ClassFloat)
	callee.Params = []ir.Reg{cx}
	cb := callee.NewBlock()
	cb.Instrs = []ir.Instr{
		{Op: ir.OpParam, Dst: cx, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 0},
		{Op: ir.OpFMul, Dst: cx, A: cx, B: cx, C: ir.NoReg},
		{Op: ir.OpRet, Dst: ir.NoReg, A: cx, B: ir.NoReg, C: ir.NoReg},
	}
	callee.RecomputePreds()

	caller := &ir.Func{Name: "MAIN", HasRet: true, RetCls: ir.ClassFloat}
	mx := caller.NewReg(ir.ClassFloat)
	caller.Params = []ir.Reg{mx}
	mb := caller.NewBlock()
	mb.Instrs = []ir.Instr{
		{Op: ir.OpParam, Dst: mx, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 0},
		{Op: ir.OpCall, Dst: mx, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Callee: "SQ", Args: []ir.Reg{mx}},
		{Op: ir.OpRet, Dst: ir.NoReg, A: mx, B: ir.NoReg, C: ir.NoReg},
	}
	caller.RecomputePreds()

	p := ir.NewProgram(0)
	p.Add(callee)
	p.Add(caller)
	it := irinterp.New(p, 64)
	v, err := it.Call("MAIN", irinterp.Float(3))
	if err != nil {
		t.Fatal(err)
	}
	if v.F != 9 {
		t.Fatalf("got %g", v.F)
	}
	if _, err := it.Call("NOPE"); err == nil {
		t.Fatal("unknown function accepted")
	}
	if _, err := it.Call("MAIN"); err == nil {
		t.Fatal("arg-count mismatch accepted")
	}
}

func TestMathOps(t *testing.T) {
	ops := []struct {
		op   ir.Op
		a, b float64
		want float64
	}{
		{ir.OpFSign, 2, -3, -2},
		{ir.OpFMod, 9.5, 3, 0.5},
		{ir.OpFPow, 3, 3, 27},
		{ir.OpFMin, 1, 2, 1},
		{ir.OpFMax, 1, 2, 2},
	}
	for _, c := range ops {
		f := &ir.Func{Name: "M"}
		x := f.NewReg(ir.ClassFloat)
		y := f.NewReg(ir.ClassFloat)
		f.Params = []ir.Reg{x, y}
		b := f.NewBlock()
		b.Instrs = []ir.Instr{
			{Op: ir.OpParam, Dst: x, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 0},
			{Op: ir.OpParam, Dst: y, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1},
			{Op: c.op, Dst: x, A: x, B: y, C: ir.NoReg},
			{Op: ir.OpRet, Dst: ir.NoReg, A: x, B: ir.NoReg, C: ir.NoReg},
		}
		f.RecomputePreds()
		it := irinterp.New(prog(f), 64)
		v, err := it.Call("M", irinterp.Float(c.a), irinterp.Float(c.b))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v.F-c.want) > 1e-12 {
			t.Fatalf("%v(%g,%g) = %g, want %g", c.op, c.a, c.b, v.F, c.want)
		}
	}
}

// TestIntOpcodeTable drives every integer ALU opcode arm.
func TestIntOpcodeTable(t *testing.T) {
	cases := []struct {
		op      ir.Op
		a, b, w int64
	}{
		{ir.OpAdd, 7, 5, 12},
		{ir.OpSub, 7, 5, 2},
		{ir.OpMul, 7, 5, 35},
		{ir.OpDiv, 17, 5, 3},
		{ir.OpMod, 17, 5, 2},
		{ir.OpIMin, -3, 4, -3},
		{ir.OpIMax, -3, 4, 4},
		{ir.OpISign, 6, -1, -6},
		{ir.OpISign, -6, 2, 6},
		{ir.OpIPow, 2, 10, 1024},
		{ir.OpIPow, 7, 0, 1},
		{ir.OpIPow, 9, -2, 0},
		{ir.OpIPow, -1, -5, -1},
		{ir.OpIPow, 1, -5, 1},
	}
	for _, c := range cases {
		f := &ir.Func{Name: "T"}
		a := f.NewReg(ir.ClassInt)
		b := f.NewReg(ir.ClassInt)
		d := f.NewReg(ir.ClassInt)
		f.Params = []ir.Reg{a, b}
		blk := f.NewBlock()
		blk.Instrs = []ir.Instr{
			{Op: ir.OpParam, Dst: a, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 0},
			{Op: ir.OpParam, Dst: b, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1},
			{Op: c.op, Dst: d, A: a, B: b, C: ir.NoReg},
			{Op: ir.OpRet, Dst: ir.NoReg, A: d, B: ir.NoReg, C: ir.NoReg},
		}
		f.RecomputePreds()
		v, err := irinterp.New(prog(f), 64).Call("T", irinterp.Int(c.a), irinterp.Int(c.b))
		if err != nil {
			t.Fatal(err)
		}
		if v.I != c.w {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.a, c.b, v.I, c.w)
		}
	}
}

// TestUnaryAndConvOps drives the single-operand arms.
func TestUnaryAndConvOps(t *testing.T) {
	// neg/abs int
	f := &ir.Func{Name: "T"}
	a := f.NewReg(ir.ClassInt)
	x := f.NewReg(ir.ClassFloat)
	y := f.NewReg(ir.ClassFloat)
	d := f.NewReg(ir.ClassInt)
	f.Params = []ir.Reg{a}
	blk := f.NewBlock()
	blk.Instrs = []ir.Instr{
		{Op: ir.OpParam, Dst: a, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 0},
		{Op: ir.OpNeg, Dst: a, A: a, B: ir.NoReg, C: ir.NoReg},   // a = 5
		{Op: ir.OpIAbs, Dst: a, A: a, B: ir.NoReg, C: ir.NoReg},  // 5
		{Op: ir.OpItoF, Dst: x, A: a, B: ir.NoReg, C: ir.NoReg},  // 5.0
		{Op: ir.OpFNeg, Dst: x, A: x, B: ir.NoReg, C: ir.NoReg},  // -5.0
		{Op: ir.OpFAbs, Dst: x, A: x, B: ir.NoReg, C: ir.NoReg},  // 5.0
		{Op: ir.OpFSqrt, Dst: y, A: x, B: ir.NoReg, C: ir.NoReg}, // sqrt 5
		{Op: ir.OpFMul, Dst: y, A: y, B: y, C: ir.NoReg},         // 5
		{Op: ir.OpFExp, Dst: y, A: y, B: ir.NoReg, C: ir.NoReg},  // e^5
		{Op: ir.OpFLog, Dst: y, A: y, B: ir.NoReg, C: ir.NoReg},  // 5
		{Op: ir.OpFSin, Dst: x, A: y, B: ir.NoReg, C: ir.NoReg},  // sin 5
		{Op: ir.OpFCos, Dst: x, A: x, B: ir.NoReg, C: ir.NoReg},  // cos sin 5
		{Op: ir.OpFtoI, Dst: d, A: y, B: ir.NoReg, C: ir.NoReg},  // 4 or 5
		{Op: ir.OpMulI, Dst: d, A: d, B: ir.NoReg, C: ir.NoReg, Imm: 10},
		{Op: ir.OpRet, Dst: ir.NoReg, A: d, B: ir.NoReg, C: ir.NoReg},
	}
	f.RecomputePreds()
	v, err := irinterp.New(prog(f), 64).Call("T", irinterp.Int(-5))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(math.Log(math.Exp(5))) * 10
	if v.I != want {
		t.Fatalf("got %d, want %d", v.I, want)
	}
}

// TestBranchComparisons drives every comparison arm in both classes.
func TestBranchComparisons(t *testing.T) {
	cmps := []ir.Cmp{ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE}
	ref := func(c ir.Cmp, a, b float64) bool {
		switch c {
		case ir.CmpEQ:
			return a == b
		case ir.CmpNE:
			return a != b
		case ir.CmpLT:
			return a < b
		case ir.CmpLE:
			return a <= b
		case ir.CmpGT:
			return a > b
		default:
			return a >= b
		}
	}
	for _, cls := range []ir.Class{ir.ClassInt, ir.ClassFloat} {
		for _, c := range cmps {
			for _, pair := range [][2]float64{{1, 2}, {2, 2}, {3, 2}} {
				f := &ir.Func{Name: "T"}
				a := f.NewReg(cls)
				b := f.NewReg(cls)
				d := f.NewReg(ir.ClassInt)
				f.Params = []ir.Reg{a, b}
				b0 := f.NewBlock()
				b1 := f.NewBlock()
				b2 := f.NewBlock()
				b0.Instrs = []ir.Instr{
					{Op: ir.OpParam, Dst: a, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 0},
					{Op: ir.OpParam, Dst: b, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1},
					{Op: ir.OpBrIf, Dst: ir.NoReg, A: a, B: b, C: ir.NoReg, Cmp: c, Cls: cls},
				}
				b0.Succs = []int{1, 2}
				b1.Instrs = []ir.Instr{
					{Op: ir.OpConst, Dst: d, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 1},
					{Op: ir.OpRet, Dst: ir.NoReg, A: d, B: ir.NoReg, C: ir.NoReg},
				}
				b2.Instrs = []ir.Instr{
					{Op: ir.OpConst, Dst: d, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: 0},
					{Op: ir.OpRet, Dst: ir.NoReg, A: d, B: ir.NoReg, C: ir.NoReg},
				}
				f.RecomputePreds()
				var args []irinterp.Value
				if cls == ir.ClassInt {
					args = []irinterp.Value{irinterp.Int(int64(pair[0])), irinterp.Int(int64(pair[1]))}
				} else {
					args = []irinterp.Value{irinterp.Float(pair[0]), irinterp.Float(pair[1])}
				}
				v, err := irinterp.New(prog(f), 64).Call("T", args...)
				if err != nil {
					t.Fatal(err)
				}
				want := int64(0)
				if ref(c, pair[0], pair[1]) {
					want = 1
				}
				if v.I != want {
					t.Errorf("%v cmp %v on %v: got %d want %d", cls, c, pair, v.I, want)
				}
			}
		}
	}
}
