package ig

import (
	"fmt"
	"reflect"
	"testing"

	"regalloc/internal/dataflow"
	"regalloc/internal/fuzzgen"
	"regalloc/internal/ir"
	"regalloc/internal/irgen"
	"regalloc/internal/liverange"
	"regalloc/internal/parser"
	"regalloc/internal/sem"
)

// compileFuzz lowers a fuzzgen program straight through the front
// end. The test lives inside package ig (to drive buildSharded past
// the GOMAXPROCS cap), so it cannot use the root package's Compile —
// graphgen and the root both import ig.
func compileFuzz(t *testing.T, seed uint64) *ir.Func {
	t.Helper()
	src := fuzzgen.Generate(seed, fuzzgen.Config{MaxStmts: 60, MaxDepth: 3})
	astProg, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("seed %d: parse: %v", seed, err)
	}
	info, err := sem.Check(astProg)
	if err != nil {
		t.Fatalf("seed %d: check: %v", seed, err)
	}
	irProg, err := irgen.Gen(astProg, info, irgen.DefaultStaticStart)
	if err != nil {
		t.Fatalf("seed %d: lower: %v", seed, err)
	}
	f := irProg.Funcs[0]
	liverange.Renumber(f)
	return f
}

// giantBlock builds a function whose instruction count is
// concentrated in one straight-line block, the shape of generated
// numeric code (GRADNT and HSSIAN put >90% of the routine in a single
// block). Sharding it forces intra-block cuts.
func giantBlock(t *testing.T, n int) *ir.Func {
	t.Helper()
	f := &ir.Func{Name: "GIANT"}
	regs := make([]ir.Reg, 40)
	for i := range regs {
		regs[i] = f.NewReg(ir.ClassInt)
	}
	b := f.NewBlock()
	for i := range regs {
		b.Instrs = append(b.Instrs, ir.Instr{
			Op: ir.OpConst, Dst: regs[i],
			A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Imm: int64(i),
		})
	}
	rng := uint64(7)
	for i := 0; i < n; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		d := regs[rng%uint64(len(regs))]
		a := regs[(rng>>8)%uint64(len(regs))]
		c := regs[(rng>>16)%uint64(len(regs))]
		if rng%5 == 0 {
			b.Instrs = append(b.Instrs, ir.Instr{
				Op: ir.OpMove, Dst: d, A: a, B: ir.NoReg, C: ir.NoReg,
			})
		} else {
			b.Instrs = append(b.Instrs, ir.Instr{
				Op: ir.OpAdd, Dst: d, A: a, B: c, C: ir.NoReg,
			})
		}
	}
	last := regs[0]
	b.Instrs = append(b.Instrs, ir.Instr{
		Op: ir.OpRet, Dst: ir.NoReg, A: last, B: ir.NoReg, C: ir.NoReg,
	})
	f.RecomputePreds()
	return f
}

// requireGraphsIdentical asserts byte-identical structure: same edge
// count and the same adjacency vectors in the same order (the order
// is what the simplify worklists tie-break on).
func requireGraphsIdentical(t *testing.T, want, got *Graph, label string) {
	t.Helper()
	if want.NumEdges() != got.NumEdges() {
		t.Fatalf("%s: edges %d != %d", label, got.NumEdges(), want.NumEdges())
	}
	for a := 0; a < want.NumNodes(); a++ {
		wn, gn := want.Neighbors(int32(a)), got.Neighbors(int32(a))
		if !reflect.DeepEqual(wn, gn) {
			// Empty vs nil both mean "no neighbors".
			if len(wn) == 0 && len(gn) == 0 {
				continue
			}
			t.Fatalf("%s: adjacency of node %d differs:\n seq %v\n par %v",
				label, a, wn, gn)
		}
	}
}

func buildForced(f *ir.Func, lv *dataflow.Liveness, shards int) *Graph {
	classes := make([]ir.Class, f.NumRegs())
	for i := range classes {
		classes[i] = f.RegClass(ir.Reg(i))
	}
	g := New(classes)
	total := 0
	for _, b := range f.Blocks {
		total += len(b.Instrs)
	}
	if shards > total {
		shards = total
	}
	buildSharded(g, f, lv, shards, total, nil)
	return g
}

// TestShardedBuildMatchesSequential is the determinism contract of
// the parallel build: for any shard count the merged graph must be
// byte-identical to the sequential one — adjacency order included.
// It deliberately bypasses the GOMAXPROCS cap so the sharded path is
// exercised even on single-CPU CI machines.
func TestShardedBuildMatchesSequential(t *testing.T) {
	funcs := []*ir.Func{giantBlock(t, 900)}
	for seed := uint64(1); seed <= 8; seed++ {
		funcs = append(funcs, compileFuzz(t, seed))
	}
	for fi, f := range funcs {
		lv := dataflow.ComputeLiveness(f)
		seq := BuildWithLiveness(f, lv, 1, nil)
		for _, shards := range []int{2, 3, 4, 7} {
			got := buildForced(f, lv, shards)
			requireGraphsIdentical(t, seq, got,
				fmt.Sprintf("func %d (%s) shards=%d", fi, f.Name, shards))
		}
	}
}

// TestMatrixMatchesGraph: the membership-only matrix — sequential or
// sharded — must answer Interfere exactly as the full graph does;
// aggressive coalescing rounds stand on this equivalence.
func TestMatrixMatchesGraph(t *testing.T) {
	funcs := []*ir.Func{giantBlock(t, 900)}
	for seed := uint64(1); seed <= 8; seed++ {
		funcs = append(funcs, compileFuzz(t, seed))
	}
	for fi, f := range funcs {
		lv := dataflow.ComputeLiveness(f)
		g := BuildWithLiveness(f, lv, 1, nil)
		mats := map[string]*Matrix{"seq": BuildMatrix(f, lv, 1, nil)}
		for _, shards := range []int{2, 4} {
			m := &Matrix{n: f.NumRegs()}
			m.class = make([]ir.Class, m.n)
			for i := range m.class {
				m.class[i] = f.RegClass(ir.Reg(i))
			}
			m.bits = make([]uint64, (m.n*(m.n-1)/2+63)/64)
			total := 0
			for _, b := range f.Blocks {
				total += len(b.Instrs)
			}
			s := shards
			if s > total {
				s = total
			}
			buildMatrixSharded(m, f, lv, s, total, nil)
			mats[fmt.Sprintf("shards=%d", shards)] = m
		}
		n := int32(f.NumRegs())
		for label, m := range mats {
			for a := int32(0); a < n; a++ {
				for b := int32(0); b < n; b++ {
					if m.Interfere(a, b) != g.Interfere(a, b) {
						t.Fatalf("func %d %s: Interfere(%d,%d) = %v, graph says %v",
							fi, label, a, b, m.Interfere(a, b), g.Interfere(a, b))
					}
				}
			}
		}
	}
}

// TestSplitPiecesCovers: the shard work lists must tile the function —
// every instruction of every block in exactly one piece, pieces
// ascending by block within a shard.
func TestSplitPiecesCovers(t *testing.T) {
	f := giantBlock(t, 500)
	lv := dataflow.ComputeLiveness(f)
	total := 0
	for _, b := range f.Blocks {
		total += len(b.Instrs)
	}
	for _, shards := range []int{1, 2, 3, 4, 5, 16} {
		work := splitPieces(f, lv, shards, total)
		covered := make(map[int][]bool)
		for bi, b := range f.Blocks {
			covered[bi] = make([]bool, len(b.Instrs))
		}
		for s := range work {
			lastBlock := -1
			for _, p := range work[s] {
				if p.bi < lastBlock {
					t.Fatalf("shards=%d: shard %d pieces out of block order", shards, s)
				}
				lastBlock = p.bi
				for i := p.lo; i < p.hi; i++ {
					if covered[p.bi][i] {
						t.Fatalf("shards=%d: instr %d.%d covered twice", shards, p.bi, i)
					}
					covered[p.bi][i] = true
				}
			}
		}
		for bi, c := range covered {
			for i, ok := range c {
				if !ok {
					t.Fatalf("shards=%d: instr %d.%d never covered", shards, bi, i)
				}
			}
		}
	}
}
