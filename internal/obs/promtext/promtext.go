// Package promtext renders obs aggregates in the Prometheus text
// exposition format (version 0.0.4), the format a Prometheus server
// scrapes from a /metrics endpoint. It is written by hand rather
// than against a client library — the repo's no-new-dependency rule —
// which is viable because the exposition format is a stable,
// line-oriented text protocol. Lint checks the invariants scrapers
// rely on and is used by the package's own tests, cmd/allocd's
// tests, and the CI smoke job.
//
// Output is deterministic: families appear in a fixed order and
// every label-keyed series within a family is sorted, so scrapes
// diff cleanly and golden tests stay stable.
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"regalloc/internal/obs"
)

// Write renders a registry snapshot. Counter families use the
// _total suffix convention; per-phase span latencies are exported as
// one Prometheus histogram family keyed by a "phase" label, whose
// buckets are obs.LatencyBuckets in seconds.
func Write(w io.Writer, s obs.RegistrySnapshot) error {
	bw := bufio.NewWriter(w)

	counter := func(name, help string, v int64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("regalloc_runs_total", "Completed allocation or coloring runs recorded in the registry.", s.Runs)
	counter("regalloc_run_errors_total", "Recorded runs that failed.", s.Errors)
	counter("regalloc_passes_total", "Trips around the Figure 4 allocation cycle, summed over runs.", s.Passes)
	counter("regalloc_spills_total", "Live ranges spilled, summed over runs.", s.Spills)
	counter("regalloc_spill_cost_milli_total", "Estimated spill cost in fixed-point milli units, summed over runs.", s.SpillCostMilli)
	counter("regalloc_coalesced_moves_total", "Copies removed by coalescing, summed over runs.", s.CoalescedMoves)
	counter("regalloc_pcolor_rounds_total", "Speculative parallel-coloring rounds, summed over runs.", s.PColorRounds)
	counter("regalloc_pcolor_conflicts_total", "Boundary conflicts detected by parallel coloring, summed over runs.", s.PColorConflicts)
	counter("regalloc_portfolio_races_total", "Portfolio races recorded in the registry.", s.PortfolioRaces)
	counter("regalloc_portfolio_candidates_total", "Portfolio candidates entered across all races.", s.PortfolioCandidates)
	counter("regalloc_portfolio_started_total", "Portfolio candidates that began running.", s.PortfolioStarted)
	counter("regalloc_portfolio_finished_total", "Portfolio candidates that finished and verified.", s.PortfolioFinished)
	counter("regalloc_portfolio_cancelled_total", "Portfolio candidates cut off before starting.", s.PortfolioCancelled)
	counter("regalloc_portfolio_win_margin_milli_total", "Summed win margin (cheapest loser minus winner) in milli spill-cost units.", s.PortfolioMarginMilli)
	gauge("regalloc_palette_int_max", "Largest integer-register palette any recorded run used.", int64(s.PaletteIntMax))
	gauge("regalloc_palette_float_max", "Largest float-register palette any recorded run used.", int64(s.PaletteFloatMax))

	if len(s.UnitRuns) > 0 {
		fmt.Fprintf(bw, "# HELP regalloc_unit_runs_total Recorded runs per allocation unit.\n# TYPE regalloc_unit_runs_total counter\n")
		units := make([]string, 0, len(s.UnitRuns))
		for u := range s.UnitRuns {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			fmt.Fprintf(bw, "regalloc_unit_runs_total{unit=%s} %d\n", quoteLabel(u), s.UnitRuns[u])
		}
	}

	if len(s.PortfolioWins) > 0 {
		fmt.Fprintf(bw, "# HELP regalloc_portfolio_wins_total Portfolio races won per strategy.\n# TYPE regalloc_portfolio_wins_total counter\n")
		wins := make([]string, 0, len(s.PortfolioWins))
		for w := range s.PortfolioWins {
			wins = append(wins, w)
		}
		sort.Strings(wins)
		for _, w := range wins {
			fmt.Fprintf(bw, "regalloc_portfolio_wins_total{strategy=%s} %d\n", quoteLabel(w), s.PortfolioWins[w])
		}
	}

	fmt.Fprintf(bw, "# HELP regalloc_phase_duration_seconds Wall time of one allocator phase within one run.\n# TYPE regalloc_phase_duration_seconds histogram\n")
	for p := 0; p < obs.NumPhases; p++ {
		writeHistogram(bw, "regalloc_phase_duration_seconds", fmt.Sprintf("phase=%s", quoteLabel(obs.Phase(p).String())), s.Phase[p])
	}
	fmt.Fprintf(bw, "# HELP regalloc_run_duration_seconds Total wall time of one recorded run.\n# TYPE regalloc_run_duration_seconds histogram\n")
	writeHistogram(bw, "regalloc_run_duration_seconds", "", s.Total)

	return bw.Flush()
}

// WriteMetrics renders a live-event aggregate (obs.Metrics) as two
// families: the summed trace counters, labeled by phase and counter
// name, and the spill/reuse decision totals. Keys are sorted, so the
// output is deterministic for a given snapshot.
func WriteMetrics(w io.Writer, m obs.Metrics) error {
	bw := bufio.NewWriter(w)
	if len(m.Counters) > 0 {
		fmt.Fprintf(bw, "# HELP regalloc_events_total Trace counter totals, labeled by phase and counter name.\n# TYPE regalloc_events_total counter\n")
		keys := make([]string, 0, len(m.Counters))
		for k := range m.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			phase, name := k, ""
			if i := strings.IndexByte(k, '/'); i >= 0 {
				phase, name = k[:i], k[i+1:]
			}
			fmt.Fprintf(bw, "regalloc_events_total{phase=%s,name=%s} %d\n", quoteLabel(phase), quoteLabel(name), m.Counters[k])
		}
	}
	fmt.Fprintf(bw, "# HELP regalloc_spill_decisions_total Simplify stuck-choices observed in the event stream.\n# TYPE regalloc_spill_decisions_total counter\nregalloc_spill_decisions_total %d\n", m.SpillDecisions)
	fmt.Fprintf(bw, "# HELP regalloc_color_reuses_total Optimistic coloring wins observed in the event stream.\n# TYPE regalloc_color_reuses_total counter\nregalloc_color_reuses_total %d\n", m.ColorReuses)
	return bw.Flush()
}

// WriteCache renders a result-cache snapshot (obs.CacheStats): the
// hit/miss/shared/eviction counters the allocd smoke test and the
// allocload hit-rate computation scrape, occupancy gauges, and the
// hit-lookup and miss-fill latency histograms on the shared bucket
// ladder.
func WriteCache(w io.Writer, s obs.CacheStats) error {
	bw := bufio.NewWriter(w)
	counter := func(name, help string, v int64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("regalloc_cache_hits_total", "Result-cache lookups served from a stored entry.", s.Hits)
	counter("regalloc_cache_misses_total", "Result-cache lookups that ran the allocation (flight leaders).", s.Misses)
	counter("regalloc_cache_singleflight_shared_total", "Result-cache lookups collapsed onto an in-flight identical request.", s.Shared)
	counter("regalloc_cache_abandoned_waits_total", "Result-cache waiters whose context expired before the shared fill finished.", s.Abandoned)
	counter("regalloc_cache_evictions_total", "Result-cache entries dropped to respect the capacity bounds.", s.Evictions)
	gauge("regalloc_cache_entries", "Result-cache entries currently stored.", int64(s.Entries))
	gauge("regalloc_cache_bytes", "Result-cache value bytes currently stored.", s.Bytes)
	fmt.Fprintf(bw, "# HELP regalloc_cache_hit_duration_seconds Lookup-to-return time of result-cache hits.\n# TYPE regalloc_cache_hit_duration_seconds histogram\n")
	writeHistogram(bw, "regalloc_cache_hit_duration_seconds", "", s.HitLatency)
	fmt.Fprintf(bw, "# HELP regalloc_cache_fill_duration_seconds Fill time of result-cache misses (the allocation itself).\n# TYPE regalloc_cache_fill_duration_seconds histogram\n")
	writeHistogram(bw, "regalloc_cache_fill_duration_seconds", "", s.FillLatency)
	return bw.Flush()
}

// WriteExemplarHistogram renders one trace-linked histogram family:
// the standard _bucket/_sum/_count triple with an OpenMetrics
// exemplar (`# {trace_id="..."} value timestamp`) appended to every
// bucket that has one. Prometheus's text parser ignores everything
// after '#', so the output stays scrapeable by servers that predate
// exemplar ingestion; servers that support them link the bucket to
// the trace.
func WriteExemplarHistogram(w io.Writer, family, help string, h *obs.ExemplarHistogram) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s histogram\n", family, help, family)
	hist, ex := h.Snapshot()
	var cum int64
	emit := func(i int, le string) {
		cum += hist.Buckets[i]
		fmt.Fprintf(bw, "%s_bucket{le=%q} %d", family, le, cum)
		if e := ex[i]; e.TraceID != "" {
			fmt.Fprintf(bw, " # {trace_id=%s} %s %s",
				quoteLabel(e.TraceID), formatSeconds(e.Value), formatSeconds(e.TS))
		}
		bw.WriteByte('\n')
	}
	for i, ub := range obs.LatencyBuckets {
		emit(i, formatSeconds(ub.Seconds()))
	}
	emit(obs.NumLatencyBuckets, "+Inf")
	fmt.Fprintf(bw, "%s_sum %s\n", family, formatSeconds(float64(hist.SumNS)/1e9))
	fmt.Fprintf(bw, "%s_count %d\n", family, hist.Count)
	return bw.Flush()
}

// writeHistogram emits the _bucket/_sum/_count triple for one series.
// labels is a pre-rendered `k="v"` list without braces ("" for none).
func writeHistogram(w io.Writer, family, labels string, h obs.LatencyHistogram) {
	with := func(extra string) string {
		switch {
		case labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labels + "}"
		default:
			return "{" + labels + "," + extra + "}"
		}
	}
	var cum int64
	for i, ub := range obs.LatencyBuckets {
		cum += h.Buckets[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", family, with(`le="`+formatSeconds(ub.Seconds())+`"`), cum)
	}
	cum += h.Buckets[obs.NumLatencyBuckets]
	fmt.Fprintf(w, "%s_bucket%s %d\n", family, with(`le="+Inf"`), cum)
	sumLabels := ""
	if labels != "" {
		sumLabels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", family, sumLabels, formatSeconds(float64(h.SumNS)/1e9))
	fmt.Fprintf(w, "%s_count%s %d\n", family, sumLabels, h.Count)
}

// formatSeconds renders a float the shortest way that round-trips,
// matching how Prometheus clients print le bounds and sums.
func formatSeconds(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// quoteLabel renders a label value with the exposition format's
// escaping (backslash, double quote, newline).
func quoteLabel(v string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}
