// Command regalloc colors a standalone interference graph, so the
// heuristics can be compared outside the compiler (e.g. on graphs
// from other tools or on generated stress graphs), or — with -src —
// runs the full allocator over a mini-FORTRAN source file.
//
// Usage:
//
//	regalloc -k 4 graph.ig           color a graph file
//	regalloc -k 8 -random 200,0.3,7  color G(200, 0.3) with seed 7
//	regalloc -k 16 -svdlike          color the paper's SVD pressure pattern
//	regalloc -src prog.f             allocate every routine of a source file
//
// Graph mode can additionally run the speculative parallel colorer
// (internal/pcolor, unbounded palette — it reports colors used
// rather than spills within -k):
//
//	regalloc -pcolor -workers 4 -pseed 1 graph.ig
//
// Observability (either mode):
//
//	-trace out.jsonl          write the allocator's event stream as
//	                          JSON lines ("-" for stdout): phase
//	                          spans, counters, spill decisions,
//	                          color-reuse witnesses
//	-trace-perfetto out.json  write the same run as Chrome
//	                          trace-event JSON, openable directly in
//	                          ui.perfetto.dev (one named thread per
//	                          unit, phases nested as they ran)
//	-metrics                  print aggregated counters and
//	                          per-phase duration histograms after
//	                          the run
//
// Graph file format (text): one directive per line.
//
//	n <nodes>
//	e <a> <b>        interference edge (0-based node numbers)
//	c <a> <cost>     spill cost (default 1)
//	# comment
//
// For each heuristic the tool prints nodes spilled and, with -v, the
// full assignment.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"regalloc"
	"regalloc/internal/color"
	"regalloc/internal/fsutil"
	"regalloc/internal/graphgen"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
	"regalloc/internal/obs"
	"regalloc/internal/obs/traceevent"
	"regalloc/internal/pcolor"
	"regalloc/internal/portfolio"
)

func main() {
	k := flag.Int("k", 8, "number of colors (registers)")
	random := flag.String("random", "", "generate G(n,p): \"n,p,seed\"")
	svdlike := flag.Bool("svdlike", false, "generate the paper's SVD pressure pattern")
	src := flag.String("src", "", "run the full allocator over a mini-FORTRAN source file")
	heuristic := flag.String("heuristic", "briggs", "-src mode: coloring heuristic (chaitin, briggs, mb, ssa, irc)")
	machineName := flag.String("machine", "", "-src mode: constrain the allocation with a register-file model (rtpc), resized to -k")
	usePortfolio := flag.Bool("portfolio", false, "-src mode: race the strategy portfolio per routine and keep the cheapest verified result")
	portfolioMode := flag.String("portfolio-mode", "race-to-best", "-portfolio: stopping rule (race-to-best, first-good)")
	portfolioBudget := flag.Duration("portfolio-budget", 0, "-portfolio: wall-clock budget for starting candidates (0 = none)")
	usePColor := flag.Bool("pcolor", false, "graph mode: also run the speculative parallel colorer")
	workers := flag.Int("workers", 0, "-pcolor: worker goroutines (0 = GOMAXPROCS)")
	pseed := flag.Uint64("pseed", 1, "-pcolor: permutation seed")
	palgo := flag.String("pcolor-algo", "speculative", "-pcolor: round structure (speculative | jp)")
	verbose := flag.Bool("v", false, "print the full color assignment")
	tracePath := flag.String("trace", "", "write a JSON-lines event trace to this file (\"-\" for stdout)")
	perfettoPath := flag.String("trace-perfetto", "", "write a Chrome/Perfetto trace-event JSON file (\"-\" for stdout)")
	metrics := flag.Bool("metrics", false, "print aggregated metrics after the run")
	flag.Parse()

	var traceSink obs.Sink
	closeTrace := func() error { return nil }
	if *tracePath != "" {
		w := os.Stdout
		var f *os.File
		if *tracePath != "-" {
			var err error
			f, err = os.Create(*tracePath)
			fail(err)
			w = f
		}
		js := obs.NewJSONSink(w)
		traceSink = js
		// Checked at exit, not dropped in a defer: a write error
		// (full disk, quota) surfaces mid-stream, at fsync, or at
		// close, and any of them must fail the run instead of
		// silently truncating the trace.
		closeTrace = func() error {
			if err := js.Err(); err != nil {
				return err
			}
			if f != nil {
				return fsutil.SyncClose(f)
			}
			return nil
		}
	}
	var perfettoSink *traceevent.Sink
	closePerfetto := func() error { return nil }
	if *perfettoPath != "" {
		perfettoSink = traceevent.New()
		// The trace-event file is buffered in the sink and written
		// once at exit, through the same fsync-or-error close path as
		// the JSON-lines trace.
		closePerfetto = func() error {
			if *perfettoPath == "-" {
				return perfettoSink.WriteJSON(os.Stdout)
			}
			f, err := os.Create(*perfettoPath)
			if err != nil {
				return err
			}
			if err := perfettoSink.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			return fsutil.SyncClose(f)
		}
	}
	var metricsSink *obs.MetricsSink
	if *metrics {
		metricsSink = obs.NewMetricsSink()
	}
	sink := obs.Multi(traceSink, metricsSink, perfettoSink)

	if *src != "" {
		if *usePortfolio {
			runPortfolio(*src, *k, *portfolioMode, *portfolioBudget, sink)
		} else {
			runSource(*src, *heuristic, *machineName, *k, sink)
		}
	} else {
		runGraph(*k, *random, *svdlike, *verbose, sink)
		if *usePColor {
			runPColor(*workers, *pseed, parseAlgo(*palgo), *random, *svdlike, *verbose, sink)
		}
	}
	if metricsSink != nil {
		fmt.Print(metricsSink.Snapshot())
	}
	if err := closeTrace(); err != nil {
		fmt.Fprintln(os.Stderr, "regalloc: closing trace:", err)
		os.Exit(1)
	}
	if err := closePerfetto(); err != nil {
		fmt.Fprintln(os.Stderr, "regalloc: writing perfetto trace:", err)
		os.Exit(1)
	}
}

// runSource compiles a mini-FORTRAN file and allocates every routine
// with the observer wired in, printing a per-pass summary that the
// emitted spans reconcile with.
func runSource(path, heuristic, machineName string, k int, sink obs.Sink) {
	data, err := os.ReadFile(path)
	fail(err)
	h, err := color.ParseHeuristic(heuristic)
	fail(err)
	prog, err := regalloc.Compile(string(data))
	fail(err)

	opt := regalloc.DefaultOptions()
	opt.Heuristic = h
	opt.KInt = k
	opt.Observer = sink
	switch machineName {
	case "":
	case "rtpc", "rt/pc":
		opt.Machine = regalloc.MachineFor(regalloc.RTPC().WithGPR(opt.KInt).WithFPR(opt.KFloat))
	default:
		fail(fmt.Errorf("unknown -machine %q (want rtpc)", machineName))
	}
	for _, name := range prog.Functions() {
		res, err := prog.Allocate(name, opt)
		fail(err)
		fmt.Printf("%s: %d live range(s), %d pass(es), %d spilled, total %s\n",
			name, res.LiveRanges(), len(res.Passes), res.TotalSpilled(), res.TotalTime())
		for i, ps := range res.Passes {
			fmt.Printf("  pass %d: build %s, simplify %s, color %s, spill %s (%d nodes, %d edges, %d spilled)\n",
				i, ps.Build, ps.Simplify, ps.Color, ps.Spill, ps.LiveRanges, ps.Edges, ps.Spilled)
		}
	}
}

// runPortfolio compiles a mini-FORTRAN file and races the default
// strategy portfolio for every routine, printing each race's table:
// one line per candidate (status, spills, cost, time) with the
// winner starred.
func runPortfolio(path string, k int, mode string, budget time.Duration, sink obs.Sink) {
	data, err := os.ReadFile(path)
	fail(err)
	m, err := portfolio.ParseMode(mode)
	fail(err)
	prog, err := regalloc.Compile(string(data))
	fail(err)

	base := regalloc.DefaultOptions()
	base.KInt = k
	cands := regalloc.DefaultPortfolio(base)
	cfg := regalloc.PortfolioConfig{Mode: m, Budget: budget, Observer: sink}
	for _, name := range prog.Functions() {
		pr, err := prog.AllocatePortfolio(context.Background(), name, cands, cfg)
		fail(err)
		win := pr.Outcomes[pr.Winner]
		fmt.Printf("%s: %d candidate(s), winner %s (%d spilled, cost %d.%03d, margin %d.%03d), mode %s\n",
			name, len(pr.Outcomes), win.Name, win.Spills,
			win.SpillCostMilli/1000, win.SpillCostMilli%1000,
			pr.WinMarginMilli/1000, pr.WinMarginMilli%1000, pr.Mode)
		for _, o := range pr.Outcomes {
			star := " "
			if o.Index == pr.Winner {
				star = "*"
			}
			switch o.Status {
			case portfolio.Finished:
				fmt.Printf("  %s %-14s finished  %3d spilled, cost %8d.%03d, %s\n",
					star, o.Name, o.Spills, o.SpillCostMilli/1000, o.SpillCostMilli%1000, o.Duration)
			case portfolio.Cancelled:
				fmt.Printf("  %s %-14s cancelled\n", star, o.Name)
			case portfolio.Errored:
				fmt.Printf("  %s %-14s errored   %v\n", star, o.Name, o.Err)
			}
		}
	}
}

// runGraph colors a standalone interference graph with all three
// heuristics, tracing each under the unit name "graph:<heuristic>".
func runGraph(k int, random string, svdlike, verbose bool, sink obs.Sink) {
	g, costs, err := loadGraph(random, svdlike)
	if err == errNoInput {
		fmt.Fprintln(os.Stderr, "usage: regalloc [-k N] [-pcolor] (graph.ig | -random n,p,seed | -svdlike | -src file.f)")
		os.Exit(2)
	}
	fail(err)

	kf := func(ir.Class) int { return k }
	fmt.Printf("graph: %d nodes, %d edges, k = %d\n", g.NumNodes(), g.NumEdges(), k)
	for _, h := range []color.Heuristic{color.Chaitin, color.Briggs, color.MatulaBeck} {
		tr := obs.New(sink, "graph:"+h.String())
		tr.BeginPhase(obs.PhaseSimplify)
		t0 := time.Now()
		sr := color.SimplifyTraced(g, costs, kf, h, color.CostOverDegree, tr)
		tr.EndPhase(obs.PhaseSimplify, time.Since(t0))
		var spilled []int32
		var colors []int16
		if h == color.Chaitin && len(sr.SpillMarked) > 0 {
			spilled = sr.SpillMarked
		} else {
			tr.BeginPhase(obs.PhaseColor)
			t0 = time.Now()
			colors, spilled = color.SelectTraced(g, sr, kf, h != color.Chaitin, tr)
			tr.EndPhase(obs.PhaseColor, time.Since(t0))
		}
		cost := 0.0
		for _, n := range spilled {
			cost += costs[n]
		}
		fmt.Printf("%-12s spilled %3d node(s), cost %10.0f, scan work %d\n",
			h.String()+":", len(spilled), cost, sr.ScanSteps)
		if verbose && colors != nil {
			fmt.Printf("  colors: %v\n", colors)
		}
	}
}

// parseAlgo maps the -pcolor-algo spelling to a pcolor.Algo.
func parseAlgo(s string) pcolor.Algo {
	switch s {
	case "speculative", "":
		return pcolor.Speculative
	case "jp", "jones-plassmann":
		return pcolor.JonesPlassmann
	}
	fail(fmt.Errorf("bad -pcolor-algo %q (want speculative or jp)", s))
	return pcolor.Speculative
}

// runPColor runs the parallel colorer on the same graph as runGraph
// (the generators are deterministic, so re-generating yields the
// identical graph), tracing under "graph:pcolor".
func runPColor(workers int, seed uint64, algo pcolor.Algo, random string, svdlike, verbose bool, sink obs.Sink) {
	g, _, err := loadGraph(random, svdlike)
	fail(err)
	tr := obs.New(sink, "graph:pcolor")
	tr.BeginPhase(obs.PhaseColor)
	t0 := time.Now()
	colors, st := pcolor.Color(g, pcolor.Options{Workers: workers, Seed: seed, Algo: algo, Tracer: tr})
	dur := time.Since(t0)
	tr.EndPhase(obs.PhaseColor, dur)
	if err := color.Verify(g, colors, pcolor.KFor(st)); err != nil {
		fail(fmt.Errorf("pcolor produced an improper coloring: %w", err))
	}
	fmt.Printf("pcolor[%s]: %d worker(s), seed %d: %d int + %d float color(s) in %d round(s), %d conflict(s), %d recolored, %s (verified)\n",
		algo, st.Workers, seed, st.ColorsInt, st.ColorsFloat, st.Rounds, st.Conflicts, st.Recolored, dur)
	if verbose {
		fmt.Printf("  colors: %v\n", colors)
	}
}

// loadGraph resolves the graph-mode input exactly like runGraph.
func loadGraph(random string, svdlike bool) (*ig.Graph, []float64, error) {
	switch {
	case random != "":
		return parseRandom(random)
	case svdlike:
		g, costs := graphgen.SVDLike(10, 4, 3, 10, 8, 42)
		return g, costs, nil
	case flag.NArg() == 1:
		return readGraph(flag.Arg(0))
	}
	return nil, nil, errNoInput
}

var errNoInput = fmt.Errorf("no graph input")

func parseRandom(spec string) (*ig.Graph, []float64, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return nil, nil, fmt.Errorf("bad -random spec %q (want n,p,seed)", spec)
	}
	n, err := strconv.Atoi(parts[0])
	if err != nil {
		return nil, nil, err
	}
	p, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return nil, nil, err
	}
	seed, err := strconv.ParseUint(parts[2], 10, 64)
	if err != nil {
		return nil, nil, err
	}
	g, costs := graphgen.Random(n, p, seed)
	return g, costs, nil
}

func readGraph(path string) (*ig.Graph, []float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	g, costs, err := graphgen.ReadGraph(f)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, costs, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "regalloc:", err)
		os.Exit(1)
	}
}
