package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"regalloc/internal/graphgen"
	"regalloc/internal/reqtrace"
)

// fakeAllocd mimics the service surface the driver touches: /healthz
// and /v1/alloc with an X-Cache header (miss on a body's first
// sighting, hit after — the real cache's observable behaviour).
func fakeAllocd(t *testing.T) *httptest.Server {
	t.Helper()
	var mu sync.Mutex
	seen := map[string]bool{}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/v1/alloc", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Source string `json:"source"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Source == "" {
			w.WriteHeader(http.StatusBadRequest)
			w.Write([]byte(`{"error":{"code":"bad_body","message":"bad"}}`))
			return
		}
		mu.Lock()
		hit := seen[req.Source]
		seen[req.Source] = true
		mu.Unlock()
		if hit {
			w.Header().Set("X-Cache", "hit")
		} else {
			w.Header().Set("X-Cache", "miss")
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"input":"src","units":[]}` + "\n"))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestCorpusDeterministicAndMixed(t *testing.T) {
	a, err := buildCorpus(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildCorpus(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Items) != len(b.Items) {
		t.Fatalf("corpus size changed between builds: %d vs %d", len(a.Items), len(b.Items))
	}
	for i := range a.Items {
		if string(a.Items[i].Body) != string(b.Items[i].Body) {
			t.Fatalf("item %d (%s) not deterministic", i, a.Items[i].Name)
		}
	}
	if a.Sources == 0 || a.Graphs == 0 || a.Fuzzed == 0 {
		t.Fatalf("corpus not mixed: %d sources, %d graphs, %d fuzzed", a.Sources, a.Graphs, a.Fuzzed)
	}
	// Every body must be a decodable JSON request with a source.
	for _, it := range a.Items {
		var req struct {
			Source string `json:"source"`
		}
		if err := json.Unmarshal(it.Body, &req); err != nil || req.Source == "" {
			t.Fatalf("item %s: body not a valid request: %v\n%s", it.Name, err, it.Body)
		}
	}
}

func TestRunLoadClosedLoop(t *testing.T) {
	ts := fakeAllocd(t)
	corpus, err := buildCorpus(1)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := runLoad(loadConfig{
		Addr: ts.URL, Duration: 300 * time.Millisecond, Conc: 4, Corpus: corpus, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lt.Mode != "closed" || lt.Requests == 0 {
		t.Fatalf("loadtest = %+v", lt)
	}
	if lt.Errors != 0 || lt.ErrorRate != 0 {
		t.Fatalf("errors against the fake: %d (%s)", lt.Errors, sortedStatusCodes(lt.Statuses))
	}
	if lt.Latency.Count != lt.Requests || lt.Latency.P99NS < lt.Latency.P50NS {
		t.Fatalf("latency = %+v for %d requests", lt.Latency, lt.Requests)
	}
	// The corpus is finite, so a multi-hundred-request run must see
	// repeats — i.e. a nonzero hit rate.
	if lt.Requests > int64(2*len(corpus.Items)) && lt.Cache.HitRate == 0 {
		t.Fatalf("no cache hits over %d requests on a %d-item corpus", lt.Requests, len(corpus.Items))
	}
	if lt.Cache.Misses == 0 {
		t.Fatal("no misses recorded: X-Cache accounting broken")
	}
	// Every request was minted a trace identity, so a run with
	// successes must retain slow-trace IDs — well-formed, distinct,
	// and slowest-first would need the fake to control latency, but
	// shape and count are checkable here.
	if len(lt.SlowTraceIDs) == 0 {
		t.Fatal("no slow_trace_ids retained over a successful run")
	}
	if len(lt.SlowTraceIDs) > maxSlowTraces {
		t.Fatalf("%d slow_trace_ids, cap is %d", len(lt.SlowTraceIDs), maxSlowTraces)
	}
	seen := map[string]bool{}
	for _, id := range lt.SlowTraceIDs {
		if len(id) != 32 {
			t.Fatalf("slow trace ID %q is not 32 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("slow trace ID %q retained twice", id)
		}
		seen[id] = true
	}
	if len(lt.ErrorTraceIDs) != 0 {
		t.Fatalf("error_trace_ids = %v with zero errors", lt.ErrorTraceIDs)
	}
}

// TestFireSendsTraceparent pins the client half of the trace
// contract: every request carries a valid W3C traceparent header, a
// fresh trace per request, and the collector retains the same trace
// ID the server saw.
func TestFireSendsTraceparent(t *testing.T) {
	var mu sync.Mutex
	var headers []string
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/alloc", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		headers = append(headers, r.Header.Get("traceparent"))
		mu.Unlock()
		w.Write([]byte(`{"input":"src","units":[]}` + "\n"))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	col := newCollector()
	item := corpusItem{Name: "a", Kind: "src", Body: []byte(`{"source":"a <- 1"}`)}
	fire(ts.Client(), ts.URL, item, col)
	fire(ts.Client(), ts.URL, item, col)

	if len(headers) != 2 {
		t.Fatalf("server saw %d traceparent headers, want 2", len(headers))
	}
	ids := map[string]bool{}
	for _, h := range headers {
		sc, err := reqtrace.Parse(h)
		if err != nil {
			t.Fatalf("traceparent %q does not parse: %v", h, err)
		}
		ids[sc.TraceID.String()] = true
	}
	if len(ids) != 2 {
		t.Fatalf("two requests shared a trace ID: %v", headers)
	}
	for _, s := range col.slow {
		if !ids[s.TraceID] {
			t.Fatalf("collector retained %q, server never saw it", s.TraceID)
		}
	}
	if len(col.slow) != 2 {
		t.Fatalf("collector retained %d slow traces, want 2", len(col.slow))
	}
}

// TestRunLoadFetchesFlightRecorder pins the post-run trace fetch: the
// report's traces section holds the flight-recorder records behind
// the retained trace IDs, slowest first.
func TestRunLoadFetchesFlightRecorder(t *testing.T) {
	var mu sync.Mutex
	records := map[string]reqtrace.RequestRecord{}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok\n")) })
	mux.HandleFunc("/v1/alloc", func(w http.ResponseWriter, r *http.Request) {
		sc, err := reqtrace.Parse(r.Header.Get("traceparent"))
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		mu.Lock()
		records[sc.TraceID.String()] = reqtrace.RequestRecord{
			TraceID: sc.TraceID.String(),
			DurNS:   int64(len(records) + 1),
			Status:  http.StatusOK,
		}
		mu.Unlock()
		w.Write([]byte(`{"input":"src","units":[]}` + "\n"))
	})
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		var resp struct {
			Requests []reqtrace.RequestRecord `json:"requests"`
		}
		for _, rec := range records {
			resp.Requests = append(resp.Requests, rec)
		}
		json.NewEncoder(w).Encode(resp)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	good := corpusItem{Name: "good", Kind: "src", Body: []byte(`{"source":"a <- 1"}`)}
	lt, err := runLoad(loadConfig{
		Addr: ts.URL, Duration: 200 * time.Millisecond, Conc: 2,
		Corpus: &corpus{Items: []corpusItem{good}, Sources: 1}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lt.SlowTraceIDs) == 0 {
		t.Fatal("no slow_trace_ids retained")
	}
	if len(lt.Traces) == 0 {
		t.Fatal("traces section empty: post-run /debug/requests fetch broken")
	}
	want := map[string]bool{}
	for _, id := range lt.SlowTraceIDs {
		want[id] = true
	}
	for i, tr := range lt.Traces {
		if !want[tr.TraceID] {
			t.Fatalf("traces[%d] = %q, not a retained trace ID", i, tr.TraceID)
		}
		if tr.Status != http.StatusOK {
			t.Fatalf("traces[%d].Status = %d", i, tr.Status)
		}
		if i > 0 && lt.Traces[i-1].DurNS < tr.DurNS {
			t.Fatalf("traces not sorted slowest first: %d before %d", lt.Traces[i-1].DurNS, tr.DurNS)
		}
	}
}

func TestRunLoadOpenLoop(t *testing.T) {
	ts := fakeAllocd(t)
	corpus, err := buildCorpus(1)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := runLoad(loadConfig{
		Addr: ts.URL, Duration: 300 * time.Millisecond, Conc: 4, Rate: 200, Corpus: corpus, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lt.Mode != "open" || lt.RateRPS != 200 {
		t.Fatalf("loadtest = %+v", lt)
	}
	if lt.Requests == 0 || lt.Errors != 0 {
		t.Fatalf("requests=%d errors=%d", lt.Requests, lt.Errors)
	}
}

// TestOpenLoopPacing pins the absolute-schedule pacing: the attempt
// count (requests + dropped ticks) must match duration/interval
// almost exactly. The old loop slept the full interval after each
// tick's work, so OS sleep overshoot and bookkeeping compounded into
// a rate deficit that grew with the run.
func TestOpenLoopPacing(t *testing.T) {
	ts := fakeAllocd(t)
	corpus, err := buildCorpus(1)
	if err != nil {
		t.Fatal(err)
	}
	const rate, dur = 1000.0, 400 * time.Millisecond
	lt, err := runLoad(loadConfig{
		Addr: ts.URL, Duration: dur, Conc: 8, Rate: rate, Corpus: corpus, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	attempts := lt.Requests + lt.Dropped
	want := int64(rate * dur.Seconds())
	// The absolute schedule self-corrects late ticks, so the count is
	// exact up to the sliver of duration spent before the loop starts.
	if attempts < want-want/50 || attempts > want+2 {
		t.Fatalf("open loop made %d attempts over %v at %v rps, want ~%d", attempts, dur, rate, want)
	}
}

// TestOpenLoopUsesSeededOffsets pins that the open loop walks the
// corpus from the same per-worker seeded offsets as the closed loop.
// The old loop ignored them and replayed the corpus prefix from item
// 0 in request order every run.
func TestOpenLoopUsesSeededOffsets(t *testing.T) {
	var mu sync.Mutex
	got := map[string]int{}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok\n")) })
	mux.HandleFunc("/v1/alloc", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		mu.Lock()
		got[string(body)]++
		mu.Unlock()
		w.Write([]byte(`{"input":"src","units":[]}` + "\n"))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	corpus, err := buildCorpus(1)
	if err != nil {
		t.Fatal(err)
	}
	// Conc*4 slots must exceed the ~60 total ticks so no tick can be
	// shed — a dropped tick never reaches the server and would make
	// the multiset below unreconstructable.
	const conc, seed = 16, 9
	lt, err := runLoad(loadConfig{
		Addr: ts.URL, Duration: 300 * time.Millisecond, Conc: conc, Rate: 200, Corpus: corpus, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lt.Dropped != 0 {
		t.Fatalf("%d dropped ticks with slots > total ticks", lt.Dropped)
	}
	// Rebuild the expected multiset from the documented schedule: tick
	// t is virtual worker t%conc at position offsets[t%conc] + t/conc.
	rng := graphgen.NewRNG(seed)
	offsets := make([]int, conc)
	for i := range offsets {
		offsets[i] = rng.Intn(len(corpus.Items))
	}
	want := map[string]int{}
	for tick := 0; tick < int(lt.Requests); tick++ {
		it := corpus.Items[(offsets[tick%conc]+tick/conc)%len(corpus.Items)]
		want[string(it.Body)]++
	}
	if len(got) != len(want) {
		t.Fatalf("served %d distinct bodies, schedule predicts %d", len(got), len(want))
	}
	for body, n := range want {
		if got[body] != n {
			t.Fatalf("body %.40q served %d times, schedule predicts %d", body, got[body], n)
		}
	}
}

// TestTransportErrorLatencySeparate pins the /7 histogram split: a
// connection the server kills mid-request must land in error_latency,
// not in the SLO-facing latency quantiles. The old collector folded
// transport-failure durations (up to the full 30s client timeout)
// into the same histogram the p99 gate reads.
func TestTransportErrorLatencySeparate(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok\n")) })
	mux.HandleFunc("/v1/alloc", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Source string `json:"source"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		if req.Source == "boom" {
			// Kill the connection without a response: the client sees
			// a transport error, exactly like a crashed backend.
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		w.Write([]byte(`{"input":"src","units":[]}` + "\n"))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	good := corpusItem{Name: "good", Kind: "src", Body: []byte(`{"source":"a <- 1"}`)}
	boom := corpusItem{Name: "boom", Kind: "src", Body: []byte(`{"source":"boom"}`)}
	lt, err := runLoad(loadConfig{
		Addr:     ts.URL,
		Duration: 200 * time.Millisecond,
		Conc:     2,
		Corpus:   &corpus{Items: []corpusItem{good, boom}, Sources: 2},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lt.Errors == 0 {
		t.Fatal("no transport errors provoked")
	}
	if lt.ErrorLatency == nil || lt.ErrorLatency.Count != lt.Errors {
		t.Fatalf("error_latency = %+v, want count %d", lt.ErrorLatency, lt.Errors)
	}
	if lt.Latency.Count != lt.Requests-lt.Errors {
		t.Fatalf("latency count %d includes failures (%d requests, %d errors)",
			lt.Latency.Count, lt.Requests, lt.Errors)
	}
	if lt.Statuses["0"] != lt.Errors {
		t.Fatalf("statuses = %v, want %d at status 0", lt.Statuses, lt.Errors)
	}
}

func TestRunLoadUnreachableTarget(t *testing.T) {
	corpus, err := buildCorpus(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runLoad(loadConfig{
		Addr: "http://127.0.0.1:1", Duration: time.Second, Conc: 1, Corpus: corpus,
	}); err == nil || !strings.Contains(err.Error(), "not reachable") {
		t.Fatalf("err = %v, want target-unreachable", err)
	}
}

func TestReportShapeAndGate(t *testing.T) {
	lt := &loadtestSection{
		Requests:     100,
		Errors:       0,
		ErrorRate:    0,
		Latency:      quantiles{Count: 100, P50NS: 1e6, P95NS: 5e6, P99NS: 9e6, MaxNS: 2e7},
		Cache:        cacheSummary{Hits: 80, Misses: 20, HitRate: 0.8},
		SlowTraceIDs: []string{"4bf92f3577b34da6a3ce929d0e0e4736", "00f067aa0ba902b700f067aa0ba902b7"},
	}
	r := newReport(lt)
	if r.Schema != "regalloc-bench/10" {
		t.Fatalf("schema %q", r.Schema)
	}
	if len(r.SchemaHistory) == 0 || !strings.Contains(r.SchemaHistory[len(r.SchemaHistory)-1], "irc") {
		t.Fatalf("schema history %v", r.SchemaHistory)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Same numbers: passes.
	if err := gate(lt, base, 5, 0); err != nil {
		t.Fatalf("gate on identical run: %v", err)
	}
	// Tail blown past the factor: fails, and the message hands the
	// operator the slowest trace IDs — the flight-recorder lookup keys.
	worse := *lt
	worse.Latency.P99NS = lt.Latency.P99NS * 50
	err = gate(&worse, base, 5, 0)
	if err == nil || !strings.Contains(err.Error(), "p99") {
		t.Fatalf("gate on 50x p99: %v", err)
	}
	for _, id := range lt.SlowTraceIDs {
		if !strings.Contains(err.Error(), id) {
			t.Fatalf("p99 gate failure %q omits slow trace %s", err, id)
		}
	}
	// Errors: fails even with a generous p99, naming the errored traces.
	failed := *lt
	failed.Errors, failed.ErrorRate = 3, 0.03
	failed.ErrorTraceIDs = []string{"aaaabbbbccccddddaaaabbbbccccdddd"}
	err = gate(&failed, base, 100, 0)
	if err == nil || !strings.Contains(err.Error(), "error rate") {
		t.Fatalf("gate on errors: %v", err)
	}
	if !strings.Contains(err.Error(), failed.ErrorTraceIDs[0]) {
		t.Fatalf("error-rate gate failure %q omits errored trace", err)
	}
	// Missing or sectionless baseline: loud failure, not a silent pass.
	if err := gate(lt, filepath.Join(t.TempDir(), "nope.json"), 5, 0); err == nil {
		t.Fatal("gate passed with a missing baseline")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	os.WriteFile(empty, []byte(`{"schema":"regalloc-bench/8"}`), 0o644)
	if err := gate(lt, empty, 5, 0); err == nil || !strings.Contains(err.Error(), "loadtest") {
		t.Fatalf("gate on sectionless baseline: %v", err)
	}
}
