// Package pcolor is a speculative parallel graph colorer in the
// style of Rokos, Gorman & Kelly, "A Fast and Scalable Graph
// Coloring Algorithm for Multi-core and Many-core Architectures"
// (2015): nodes are partitioned across workers, every worker colors
// its share optimistically against a read-mostly shared assignment,
// conflicts on partition-boundary edges are detected after a
// barrier, and the (shrinking) conflict set is recolored in further
// rounds until a proper coloring remains.
//
// Unlike color.Simplify/Select — which color within a fixed budget k
// and spill the overflow — pcolor colors with an unbounded first-fit
// palette, so every node receives a color and the figure of merit is
// how many colors were needed. That makes it the right backend for
// the standalone-graph paths (cmd/regalloc's graph mode, cmd/bench's
// stress graphs, the experiments package), not for the allocator's
// Figure 4 cycle, where the sequential heuristics remain the
// default.
//
// Determinism: for a fixed (Seed, Workers) pair the result is
// byte-identical across runs. Each round partitions the pending
// nodes into Workers contiguous chunks of a seeded permutation;
// during speculation a worker sees only committed colors and the
// tentative colors of its *own* chunk, so no cross-worker read races
// with a write and the outcome cannot depend on scheduling. Conflict
// resolution is by permutation rank (lower rank wins), which is also
// schedule-independent.
//
// Termination: every round commits at least the minimum-rank node of
// each conflicting component (it loses to nobody), and every
// conflict-free pending node, so the pending set strictly shrinks;
// in practice a few rounds suffice (the Stats record and the
// "pcolor.round.*" trace counters make the iteration visible).
package pcolor

import (
	"runtime"
	"sync"

	"regalloc/internal/color"
	"regalloc/internal/ig"
	"regalloc/internal/ir"
	"regalloc/internal/obs"
)

// Options configures a parallel coloring run.
type Options struct {
	// Workers is the number of coloring goroutines; <= 0 means
	// GOMAXPROCS. The (Seed, Workers) pair fully determines the
	// coloring, so fix both for reproducible results.
	Workers int
	// Seed drives the node permutation that sets the processing
	// order, the partition boundaries, and the conflict priorities.
	Seed uint64
	// Tracer, when non-nil, receives per-round counters
	// (pcolor.round.pending, pcolor.round.conflicts) and run totals
	// (pcolor.rounds, pcolor.conflicts, pcolor.recolored,
	// pcolor.workers), all scoped to the color phase.
	Tracer *obs.Tracer
}

// Stats reports how the speculative iteration behaved.
type Stats struct {
	// Workers is the effective worker count after resolving <= 0.
	Workers int
	// Rounds is the number of speculate/detect rounds run (>= 1 for
	// a non-empty graph).
	Rounds int
	// Conflicts counts the boundary-edge conflicts detected across
	// all rounds (each conflicting edge counted once).
	Conflicts int
	// Recolored is the recolor work: nodes that lost a conflict and
	// had to be colored again in a later round.
	Recolored int
	// ColorsInt and ColorsFloat are the per-class palette sizes of
	// the final coloring (max color + 1; 0 when the class is empty).
	ColorsInt   int
	ColorsFloat int
}

// Colors returns the palette size for class c.
func (s *Stats) Colors(c ir.Class) int {
	if c == ir.ClassInt {
		return s.ColorsInt
	}
	return s.ColorsFloat
}

// Slack is the documented color-count slack of the speculative
// colorer: on the graphgen corpus, pcolor uses at most
// seq + Slack(seq) colors per class, where seq is the palette size
// of the sequential smallest-last heuristic (Sequential). The
// speculative first-fit order is a seeded permutation rather than
// the degree-aware smallest-last order, which costs a couple of
// colors on dense graphs; the differential tests pin this bound.
func Slack(seq int) int {
	s := seq / 4
	if s < 2 {
		return 2
	}
	return s
}

// Color colors g with an unbounded first-fit palette using the
// speculative parallel scheme and returns the assignment (indexed by
// node, always a proper coloring per color.Verify against
// KFor(stats)) together with the iteration stats.
func Color(g *ig.Graph, o Options) ([]int16, *Stats) {
	n := g.NumNodes()
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	st := &Stats{Workers: workers}
	colors := make([]int16, n)
	for i := range colors {
		colors[i] = color.NoColor
	}
	if n == 0 {
		emitTotals(o.Tracer, st)
		return colors, st
	}

	// Seeded permutation: processing order, partition boundaries, and
	// conflict priority (rank[v] = position of v in perm; lower rank
	// wins a conflict) all derive from it.
	perm := permutation(g, o.Seed)
	rank := make([]int32, n)
	for i, v := range perm {
		rank[v] = int32(i)
	}

	// Round-stamped speculation state. stamp[v] == round marks v as
	// pending this round; tent[v] is then its tentative color and
	// owner[v] the chunk that colored it.
	tent := make([]int16, n)
	stamp := make([]int32, n) // 0 = never pending; round numbers start at 1
	owner := make([]int32, n)
	lost := make([]bool, n)

	// Per-worker first-fit scratch: a node needs at most degree+1
	// colors, so maxDegree+2 cells always hold the scan.
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := g.Degree(int32(v)); d > maxDeg {
			maxDeg = d
		}
	}
	scratch := make([][]bool, workers)
	for w := range scratch {
		scratch[w] = make([]bool, maxDeg+2)
	}

	pending := perm
	for round := int32(1); len(pending) > 0; round++ {
		st.Rounds++
		if st.Rounds > 1 {
			st.Recolored += len(pending)
		}
		chunks := chunkBounds(len(pending), workers)

		// Reset the round state sequentially before any goroutine
		// starts: stamp/owner/lost/tent become read-only (or
		// owner-written-only) during the parallel phases, so no read
		// of a neighbor's state can race with a write.
		for w := 0; w < len(chunks)-1; w++ {
			for _, v := range pending[chunks[w]:chunks[w+1]] {
				stamp[v] = round
				owner[v] = int32(w)
				lost[v] = false
				tent[v] = color.NoColor
			}
		}

		// Phase 1 — speculate: each worker first-fit colors its chunk
		// against the committed assignment plus the tentatives of its
		// *own* chunk's already-processed nodes (tent[u] >= 0 with the
		// same owner). colors[] is read-only here; tent is written
		// only for nodes the worker owns, so the one cross-chunk read
		// (the owner check) touches data frozen before the round.
		var wg sync.WaitGroup
		for w := 0; w < len(chunks)-1; w++ {
			lo, hi := chunks[w], chunks[w+1]
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(w int, chunk []int32) {
				defer wg.Done()
				used := scratch[w]
				for _, v := range chunk {
					deg := g.Degree(v)
					lim := int16(deg + 1) // first-fit needs at most deg+1 colors
					for c := int16(0); c <= lim; c++ {
						used[c] = false
					}
					for _, u := range g.Neighbors(v) {
						if c := colors[u]; c >= 0 && c <= lim {
							used[c] = true
						}
						if owner[u] == int32(w) && stamp[u] == round {
							if c := tent[u]; c >= 0 && c <= lim {
								used[c] = true
							}
						}
					}
					for c := int16(0); c <= lim; c++ {
						if !used[c] {
							tent[v] = c
							break
						}
					}
				}
			}(w, pending[lo:hi])
		}
		wg.Wait()

		// Phase 2 — detect & commit: a pending node conflicts when a
		// neighbor pending in another chunk picked the same tentative
		// color; the higher rank loses and is recolored next round.
		// Winners commit (colors[] writes race with nothing: this
		// phase reads only tent/stamp/rank).
		conflicts := make([]int, len(chunks)-1)
		for w := 0; w < len(chunks)-1; w++ {
			lo, hi := chunks[w], chunks[w+1]
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(w int, chunk []int32) {
				defer wg.Done()
				for _, v := range chunk {
					for _, u := range g.Neighbors(v) {
						if stamp[u] != round || tent[u] != tent[v] {
							continue
						}
						// One conflicting edge, counted once: the loser
						// (higher rank) records it.
						if rank[u] < rank[v] {
							conflicts[w]++
							lost[v] = true
						}
					}
					if !lost[v] {
						colors[v] = tent[v]
					}
				}
			}(w, pending[lo:hi])
		}
		wg.Wait()

		roundConflicts := 0
		for _, c := range conflicts {
			roundConflicts += c
		}
		st.Conflicts += roundConflicts
		if tr := o.Tracer; tr.Enabled() {
			tr.Counter(obs.PhaseColor, "pcolor.round.pending", int64(len(pending)))
			tr.Counter(obs.PhaseColor, "pcolor.round.conflicts", int64(roundConflicts))
		}

		// Losers, in permutation order, are the next round's pending
		// set (the order is scan order, so determinism is preserved).
		var next []int32
		for _, v := range pending {
			if lost[v] {
				next = append(next, v)
			}
		}
		pending = next
	}

	for v := int32(0); v < int32(n); v++ {
		pal := &st.ColorsInt
		if g.Class(v) == ir.ClassFloat {
			pal = &st.ColorsFloat
		}
		if c := int(colors[v]) + 1; c > *pal {
			*pal = c
		}
	}
	emitTotals(o.Tracer, st)
	return colors, st
}

func emitTotals(tr *obs.Tracer, st *Stats) {
	if !tr.Enabled() {
		return
	}
	tr.Counter(obs.PhaseColor, "pcolor.workers", int64(st.Workers))
	tr.Counter(obs.PhaseColor, "pcolor.rounds", int64(st.Rounds))
	tr.Counter(obs.PhaseColor, "pcolor.conflicts", int64(st.Conflicts))
	tr.Counter(obs.PhaseColor, "pcolor.recolored", int64(st.Recolored))
}

// permutation returns the processing order: degree-descending (the
// Welsh–Powell order, whose first-fit palette tracks smallest-last
// closely — a uniformly random order costs ~30% more colors on dense
// G(n,p)), with ties broken by a seeded Fisher–Yates shuffle. The
// shuffle uses the same xorshift64* generator as package graphgen so
// corpora stay reproducible across packages.
func permutation(g *ig.Graph, seed uint64) []int32 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	s := seed
	next := func() uint64 {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return s * 0x2545F4914F6CDD1D
	}
	n := g.NumNodes()
	shuffled := make([]int32, n)
	for i := range shuffled {
		shuffled[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	// Stable counting sort by degree, descending: O(n + maxdeg),
	// cheaper than a comparison sort on the timed path.
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := g.Degree(int32(v)); d > maxDeg {
			maxDeg = d
		}
	}
	count := make([]int, maxDeg+1)
	for _, v := range shuffled {
		count[maxDeg-g.Degree(v)]++
	}
	start := 0
	for d := range count {
		c := count[d]
		count[d] = start
		start += c
	}
	perm := make([]int32, n)
	for _, v := range shuffled {
		slot := maxDeg - g.Degree(v)
		perm[count[slot]] = v
		count[slot]++
	}
	return perm
}

// chunkBounds splits length items into at most workers contiguous
// chunks, returning the boundary offsets (len = chunks+1). The split
// depends only on (length, workers), keeping partitioning — and
// therefore the coloring — schedule-independent.
func chunkBounds(length, workers int) []int {
	if workers > length {
		workers = length
	}
	bounds := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		bounds[w] = w * length / workers
	}
	return bounds
}

// KFor returns the color.K bound matching a finished pcolor run, for
// verifying the assignment with color.Verify.
func KFor(st *Stats) color.K {
	return func(c ir.Class) int {
		n := st.Colors(c)
		if n < 1 {
			n = 1 // color.Verify requires a positive bound even for empty classes
		}
		return n
	}
}

// Sequential is the sequential comparator: smallest-last
// simplification (Matula–Beck) with an unbounded optimistic select —
// exactly what color.Simplify/Select degenerate to when k exceeds
// every degree. It returns the assignment and its stats (Workers and
// Rounds forced to 1, no conflicts), so callers can compare palette
// sizes and wall time against the speculative engine.
func Sequential(g *ig.Graph) ([]int16, *Stats) {
	n := g.NumNodes()
	kf := func(ir.Class) int { return n + 1 }
	costs := make([]float64, n)
	sr := color.Simplify(g, costs, kf, color.MatulaBeck, color.CostOverDegree)
	colors, uncolored := color.Select(g, sr.Stack, kf, true)
	if len(uncolored) != 0 {
		// k = n+1 exceeds any degree, so optimistic select cannot fail.
		panic("pcolor: sequential baseline left nodes uncolored")
	}
	st := &Stats{Workers: 1, Rounds: 1}
	for v := int32(0); v < int32(n); v++ {
		pal := &st.ColorsInt
		if g.Class(v) == ir.ClassFloat {
			pal = &st.ColorsFloat
		}
		if c := int(colors[v]) + 1; c > *pal {
			*pal = c
		}
	}
	return colors, st
}
