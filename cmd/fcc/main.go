// Command fcc is the mini-FORTRAN compiler driver: it compiles a
// source file, runs register allocation with a chosen heuristic and
// register budget, and reports per-routine statistics, IR listings,
// or disassembly.
//
// Usage:
//
//	fcc [flags] file.f
//
//	-heuristic chaitin|briggs|mb   coloring heuristic (default briggs)
//	-kint N                        general-purpose registers (default 16)
//	-kfloat N                      floating-point registers (default 8)
//	-O=false                       disable the optimizer
//	-dump ir|asm                   print a listing instead of stats
//	-routine NAME                  restrict to one routine
//	-o out.obj                     write a binary object file (package encode)
package main

import (
	"flag"
	"fmt"
	"os"

	"regalloc"
	"regalloc/internal/asm"
	"regalloc/internal/color"
	"regalloc/internal/encode"
	"regalloc/internal/ir"
)

func main() {
	heuristic := flag.String("heuristic", "briggs", "coloring heuristic: chaitin, briggs, or mb")
	kint := flag.Int("kint", 16, "number of general-purpose registers")
	kfloat := flag.Int("kfloat", 8, "number of floating-point registers")
	optimize := flag.Bool("O", true, "run the machine-independent optimizer")
	dump := flag.String("dump", "", "dump a listing: ir or asm")
	routine := flag.String("routine", "", "restrict to one routine")
	objOut := flag.String("o", "", "write the assembled program as a binary object file")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fcc [flags] file.f")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	fail(err)

	h, err := color.ParseHeuristic(*heuristic)
	fail(err)

	var prog *regalloc.Program
	if *optimize {
		prog, err = regalloc.Compile(string(src))
	} else {
		prog, err = regalloc.CompileNoOpt(string(src))
	}
	fail(err)

	opt := regalloc.DefaultOptions()
	opt.Heuristic = h
	opt.KInt = *kint
	opt.KFloat = *kfloat
	machine := regalloc.RTPC()
	machine.NumGPR = *kint
	machine.NumFPR = *kfloat

	if *objOut != "" {
		code, _, err := prog.Assemble(machine, opt)
		fail(err)
		data, err := encode.EncodeProgram(code)
		fail(err)
		fail(os.WriteFile(*objOut, data, 0o644))
		fmt.Printf("wrote %s (%d bytes)\n", *objOut, len(data))
		return
	}

	names := prog.Functions()
	if *routine != "" {
		names = []string{*routine}
	}

	if *dump == "" {
		fmt.Printf("%-12s %8s %6s %8s %8s %10s %7s\n",
			"routine", "objsize", "live", "spilled", "slots", "spillcost", "passes")
	}
	for _, name := range names {
		f := prog.Func(name)
		if f == nil {
			fail(fmt.Errorf("no routine %s", name))
		}
		if *dump == "ir" {
			ir.Fprint(os.Stdout, f)
			continue
		}
		res, err := prog.Allocate(name, opt)
		fail(err)
		lowered, err := asm.Lower(res.Func, res.Colors, machine)
		fail(err)
		if *dump == "asm" {
			asm.Fprint(os.Stdout, lowered)
			continue
		}
		fmt.Printf("%-12s %8d %6d %8d %8d %10.0f %7d\n",
			name, lowered.ObjectSize(), res.LiveRanges(), res.TotalSpilled(),
			res.Func.NumSlots, res.TotalSpillCost(), len(res.Passes))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fcc:", err)
		os.Exit(1)
	}
}
